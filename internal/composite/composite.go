// Package composite implements the compositing phase of the shear-warp
// algorithm: streaming through the run-length-encoded volume in scanline
// order and accumulating the sheared slices into the intermediate image,
// front to back, with early ray termination via the image's opaque-pixel
// skip links.
//
// The unit of work is one intermediate-image scanline — the task
// granularity of both parallel algorithms in the paper — exposed as
// Ctx.Scanline. The kernel does the real arithmetic and, when a Tracer is
// attached, reports the shared-array ranges it touches so the memory-system
// simulators can replay its reference stream. Work cycles are counted with
// an explicit cost model (the Pixie basic-block-counting analog).
//
// Scanline is split into a traced and an untraced variant: native frames
// (Tracer == nil) run a branch-free fast path with no trace.Array
// indirection or per-pixel tracer checks, while the simulators get the
// instrumented twin. Both share the per-pixel arithmetic, so images and
// counters are bit-identical across the two paths.
package composite

import (
	"math"

	"shearwarp/internal/classify"
	"shearwarp/internal/cpudispatch"
	"shearwarp/internal/img"
	"shearwarp/internal/rendermode"
	"shearwarp/internal/rle"
	"shearwarp/internal/trace"
	"shearwarp/internal/xform"
)

// Cost model: cycle counts per primitive operation, playing the role of the
// paper's basic-block instruction counts on a 1-CPI processor. The ratios
// matter more than absolute values: compositing a sample is an order of
// magnitude more work than stepping over a run header, matching Figure 2's
// shear-warp breakdown where compositing dominates looping.
const (
	CyclesPerSample     = 22 // bilinear gather of 4 voxels + composite + test
	CyclesPerEmptyPixel = 3  // pixel visited but sample transparent
	CyclesPerSkip       = 2  // following one opaque-run link
	CyclesPerRun        = 4  // decoding one run header
	CyclesPerVoxelCopy  = 2  // streaming one packed voxel out of the RLE
	CyclesPerSliceSetup = 14 // per-slice shear setup for a scanline
	CyclesPerLineSetup  = 30 // per-scanline task setup
)

// u8f maps a byte to its exact float32 value, hoisting the int-to-float
// conversions out of the per-pixel unpack arithmetic. Integers up to 255
// are exactly representable, so table lookups are bit-identical to inline
// conversions.
var u8f = func() (t [256]float32) {
	for i := range t {
		t[i] = float32(i)
	}
	return
}()

// u8f255 tabulates u8f[i] * (1/255) — the normalized alpha unpack — using
// the identical multiplication, so entries are bit-identical to computing
// the product per pixel.
var u8f255 = func() (t [256]float32) {
	for i := range t {
		t[i] = u8f[i] * (1.0 / 255)
	}
	return
}()

// Counters aggregates kernel work. Cycles is the modeled busy time; the
// remaining fields break it down for the Figure 2-style analyses.
type Counters struct {
	Cycles      int64 // total modeled work cycles
	Samples     int64 // composited (resampled + blended) samples
	EmptyPixels int64 // pixels visited whose resampled alpha was ~0
	Skips       int64 // opaque-run link traversals
	Runs        int64 // run headers decoded
	VoxelsRead  int64 // packed voxels streamed from the RLE
	Slices      int64 // slice visits across scanline tasks
	Scanlines   int64 // scanline tasks executed
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Cycles += other.Cycles
	c.Samples += other.Samples
	c.EmptyPixels += other.EmptyPixels
	c.Skips += other.Skips
	c.Runs += other.Runs
	c.VoxelsRead += other.VoxelsRead
	c.Slices += other.Slices
	c.Scanlines += other.Scanlines
}

// LoopingCycles returns the portion of Cycles spent on control overhead and
// coherence-structure traversal rather than resampling/compositing — the
// paper's "looping time" (Figure 2).
func (c *Counters) LoopingCycles() int64 {
	return c.Cycles - c.Samples*CyclesPerSample
}

// Arrays holds the trace handles of the shared arrays the kernel touches.
// A zero value (invalid handles) disables tracing of that array.
type Arrays struct {
	RunLens  trace.Array // rle.Volume.RunLens, elem 2 bytes
	Vox      trace.Array // rle.Volume.Vox, elem 4 bytes
	IntPix   trace.Array // img.Intermediate.Pix, elem 16 bytes per pixel
	IntLinks trace.Array // img.Intermediate.Links, elem 4 bytes
}

// RegisterArrays lays out the kernel's shared arrays in an address space.
func RegisterArrays(s *trace.AddrSpace, v *rle.Volume, m *img.Intermediate) Arrays {
	return Arrays{
		RunLens:  s.Register("rle.RunLens", 2, len(v.RunLens)),
		Vox:      s.Register("rle.Vox", 4, len(v.Vox)),
		IntPix:   s.Register("int.Pix", 16, m.W*m.H),
		IntLinks: s.Register("int.Links", 4, m.W*m.H),
	}
}

// Ctx carries everything one processor needs to composite scanlines. Each
// simulated or native processor owns its own Ctx (the scratch buffers are
// private); F, V and M are shared. A Ctx may be rebound to a new frame with
// Bind, so renderers can pool contexts instead of allocating per frame.
type Ctx struct {
	F *xform.Factorization
	V *rle.Volume
	M *img.Intermediate

	Tracer trace.Tracer // nil in native mode
	Arrays Arrays

	// Kernel selects the untraced pixel-kernel tier: KernelScalar (or the
	// zero value KernelAuto) runs the exact float32 kernel, KernelPacked
	// the 64-bit packed-lane fixed-point tier (a documented epsilon mode —
	// see DESIGN.md). The traced simulator path always runs the scalar
	// reference kernel regardless. Set it between frames only; the render
	// layer assigns it after every (re)bind.
	Kernel cpudispatch.Kernel

	// Mode selects the per-sample accumulation rule of the untraced path:
	// Composite (the zero value) over-blends front to back with early ray
	// termination, MIP keeps the per-channel maximum of the premultiplied
	// samples (never saturating a pixel, so the active list stays full and
	// early termination is structurally off). Isosurface volumes are
	// classification-time and composite with the standard over-blend, so
	// they run as Composite here. The traced simulator path is
	// composite-only. Set it between frames only; the render layer assigns
	// it after every (re)bind.
	Mode rendermode.Mode

	// alphaLUT, when non-nil, applies Lacroute's view-dependent opacity
	// correction: stored opacities assume unit sample spacing, but the
	// shear samples once per slice, spacing the samples
	// d = sqrt(1 + Si^2 + Sj^2) apart along the ray, so the corrected
	// opacity is 1 - (1-a)^d. Enable with EnableOpacityCorrection.
	alphaLUT []float32
	lutBuf   []float32 // backing storage, reused across rebinds

	// Traced-path scratch. Per slice, the rows hold valid data (decoded
	// voxels, or zero) only over the voxel footprint of the merged pixel
	// spans: decode fills the spans and zeroGaps zeroes the footprint
	// between them, so the pixel kernel reads the rows unconditionally and
	// nothing outside the footprint is ever touched — the full-width clears
	// of a naive scratch wipe never happen.
	row0, row1     []classify.Voxel
	spans0, spans1 []rle.Span
	merged         []pixSpan // shared with the untraced path

	// Untraced-path scratch.
	//
	// act is the scanline's active list: the pixel intervals not yet
	// saturated, maintained across slices instead of re-walking the
	// skip links per merged span. It is seeded from the links once per
	// scanline and updated after each slice by splitting around the
	// pixels that saturated (sat, collected by the kernels in ascending
	// order); actNext is the double buffer for the split.
	//
	// live holds the current slice's live pieces — merged spans
	// intersected with act — each carrying a per-line tap-source code
	// (see liveIv): most pieces read their bilinear taps directly from
	// the packed voxel stream (span-interior) or from a shared,
	// never-written zero lane (line absent under the piece); only pieces
	// straddling a span edge stage their taps through the scratch lanes.
	// vlane holds raw voxels for the exact scalar kernel; plane holds
	// rle.SpreadPremul lanes for the packed tier. Only the footprint of
	// straddling pieces is ever (re)written or read — stale content
	// elsewhere is never touched.
	//
	// rowAcc is the packed tier's fixed-point row accumulator: two
	// uint64 per pixel (A<<32|R and G<<32|B, channel values scaled by
	// 65280), loaded from Pix once per scanline and flushed back once,
	// so the blend itself never leaves integer registers.
	act, actNext   []pixSpan
	sat            []int32
	live           []liveIv
	vlane0, vlane1 []classify.Voxel
	plane0, plane1 []uint64
	zvlane         []classify.Voxel // shared zero lane, never written
	zplane         []uint64         // shared zero lane, never written
	rowAcc         []uint64
}

// lutSize is the resolution of the opacity-correction table; resampled
// alphas index it linearly.
const lutSize = 1024

// EnableOpacityCorrection builds the per-frame correction table from the
// factorization's shear coefficients. Every processor rendering the same
// frame must make the same choice, or images diverge.
func (c *Ctx) EnableOpacityCorrection() {
	d := math.Sqrt(1 + c.F.Si*c.F.Si + c.F.Sj*c.F.Sj)
	if cap(c.lutBuf) < lutSize+1 {
		c.lutBuf = make([]float32, lutSize+1)
	}
	c.lutBuf = c.lutBuf[:lutSize+1]
	for i := 0; i <= lutSize; i++ {
		a := float64(i) / lutSize
		c.lutBuf[i] = float32(1 - math.Pow(1-a, d))
	}
	c.alphaLUT = c.lutBuf
}

// correctAlpha maps a resampled opacity through the correction table (a
// no-op factor of 1 when correction is disabled).
func (c *Ctx) correctAlpha(aa float32) float32 {
	if c.alphaLUT == nil {
		return aa
	}
	idx := int(aa * lutSize)
	if idx < 0 {
		idx = 0
	}
	if idx >= lutSize {
		idx = lutSize
	}
	return c.alphaLUT[idx]
}

// pixSpan is a pixel-index interval [Lo, Hi) of the intermediate scanline
// that can receive non-transparent samples from the current slice.
type pixSpan struct{ Lo, Hi int }

// liveIv is one live piece of the current slice: a pixel interval [Lo, Hi)
// that both intersects the slice's merged voxel spans and is not yet
// saturated, plus a tap-source code per contributing line. A code b >= 0
// means the piece lies in the interior of one voxel span and the kernel
// reads its taps directly from the source stream starting at index b; the
// sentinel laneZero means the line has no voxels under the piece and the
// kernel reads the shared zero lane; any other negative value means the
// piece straddles span edges and its taps were staged into the scratch
// lane starting at index ^b.
type liveIv struct {
	Lo, Hi int32
	B0, B1 int32
}

// laneZero marks a live piece with no contributing voxels on that line.
const laneZero = math.MinInt32

// laneSel resolves a liveIv tap-source code to the slice the kernel reads
// its taps from.
func laneSel[T classify.Voxel | uint64](b int32, src, lane, zero []T) []T {
	if b >= 0 {
		return src[b:]
	}
	if b == laneZero {
		return zero
	}
	return lane[^b:]
}

// NewCtx builds a per-processor compositing context.
func NewCtx(f *xform.Factorization, v *rle.Volume, m *img.Intermediate) *Ctx {
	c := &Ctx{}
	c.Bind(f, v, m)
	return c
}

// Bind points an existing context at a new frame, reusing its scratch
// buffers when they are large enough. It resets the tracer and the opacity
// correction (re-enable per frame as needed), so a pooled context always
// starts in native mode.
func (c *Ctx) Bind(f *xform.Factorization, v *rle.Volume, m *img.Intermediate) {
	c.F, c.V, c.M = f, v, m
	c.Tracer = nil
	c.Arrays = Arrays{}
	c.alphaLUT = nil
	if cap(c.row0) < v.Ni {
		c.row0 = make([]classify.Voxel, v.Ni)
		c.row1 = make([]classify.Voxel, v.Ni)
	} else {
		// Stale contents are harmless: every slice revalidates the rows
		// over the footprint it reads before compositing.
		c.row0 = c.row0[:v.Ni]
		c.row1 = c.row1[:v.Ni]
	}
	// Size the span scratch for the densest scanline of the encoding so
	// steady-state compositing never grows an append (non-transparent runs
	// are at most half the run headers, plus one for an odd tail).
	maxSpans := v.MaxLineRuns/2 + 1
	if cap(c.spans0) < maxSpans {
		c.spans0 = make([]rle.Span, 0, maxSpans)
		c.spans1 = make([]rle.Span, 0, maxSpans)
	}
	if cap(c.merged) < 2*maxSpans {
		c.merged = make([]pixSpan, 0, 2*maxSpans)
	}
	// Active and live intervals are disjoint with at least one dead pixel
	// between them, so a scanline can never hold more than W/2+1 of
	// either; a slice saturates at most W pixels.
	if cap(c.act) < m.W/2+1 {
		c.act = make([]pixSpan, 0, m.W/2+1)
		c.actNext = make([]pixSpan, 0, m.W/2+1)
		c.live = make([]liveIv, 0, m.W/2+1)
	}
	if cap(c.sat) < m.W {
		c.sat = make([]int32, 0, m.W)
	}
	if cap(c.rowAcc) < 2*m.W {
		c.rowAcc = make([]uint64, 2*m.W)
	} else {
		c.rowAcc = c.rowAcc[:2*m.W]
	}
	// A live piece spans at most Ni+1 pixels (tap indices -1..Ni), so
	// lanes of Ni+2 cover any piece; the z-lanes are made zeroed and never
	// written, so shrinking reslices keep them zero.
	if cap(c.vlane0) < v.Ni+2 {
		c.vlane0 = make([]classify.Voxel, v.Ni+2)
		c.vlane1 = make([]classify.Voxel, v.Ni+2)
		c.plane0 = make([]uint64, v.Ni+2)
		c.plane1 = make([]uint64, v.Ni+2)
		c.zvlane = make([]classify.Voxel, v.Ni+2)
		c.zplane = make([]uint64, v.Ni+2)
	} else {
		c.vlane0 = c.vlane0[:v.Ni+2]
		c.vlane1 = c.vlane1[:v.Ni+2]
		c.plane0 = c.plane0[:v.Ni+2]
		c.plane1 = c.plane1[:v.Ni+2]
		c.zvlane = c.zvlane[:v.Ni+2]
		c.zplane = c.zplane[:v.Ni+2]
	}
}

// sliceGeom is the per-slice resampling setup shared by the traced and
// untraced scanline kernels.
type sliceGeom struct {
	j0                 int
	have0, have1       bool
	off                int
	fractional         bool
	w00, w10, w01, w11 float32
}

// sliceSetup computes the shear geometry of slice k against intermediate
// row vRow. ok is false when the slice cannot reach the scanline.
func (c *Ctx) sliceSetup(vRow, k int) (g sliceGeom, ok bool) {
	f := c.F
	tu, tv := f.SliceShift(k)
	y := float64(vRow) - tv
	j0 := int(math.Floor(y))
	wy := y - float64(j0)
	if j0 < -1 || j0 >= f.Nj {
		return g, false
	}
	g.j0 = j0
	g.have0 = j0 >= 0 && wy < 1
	g.have1 = j0+1 < f.Nj && wy > 0

	// Constant resampling weights along the row (see Factorization).
	tuInt := int(math.Floor(tu))
	tuFrac := tu - float64(tuInt)
	g.off = tuInt // pixel u gathers voxels i0 = u-off(-1) and i0+1
	wx := 0.0
	if tuFrac > 0 {
		g.off = tuInt + 1
		wx = 1 - tuFrac
	}
	g.fractional = wx > 0
	g.w00 = float32((1 - wx) * (1 - wy))
	g.w10 = float32(wx * (1 - wy))
	g.w01 = float32((1 - wx) * wy)
	g.w11 = float32(wx * wy)
	return g, true
}

// Scanline composites intermediate-image row vRow across all slices, front
// to back, and returns the work cycles it spent. The returned cycles are
// also accumulated into cnt along with the detailed counters.
func (c *Ctx) Scanline(vRow int, cnt *Counters) int64 {
	if c.Tracer == nil {
		return c.scanlineUntraced(vRow, cnt)
	}
	return c.scanlineTraced(vRow, cnt)
}

// scanlineUntraced is the native fast path: no tracer checks or trace.Array
// indirection anywhere in the slice, span and pixel loops.
//
// It seeds an active list of not-yet-saturated pixel intervals from the
// skip links once, then per slice (1) windows the contributing lines'
// encode-time span index without touching the packed voxels, (2) merges
// the spans into pixel intervals, (3) intersects those with the active
// list — charging the reference walk's skip-link traversals — and
// classifies each surviving piece's tap source per line (direct stream
// read, shared zero lane, or a staged scratch lane for span-edge
// straddles), and (4) runs a checkless pixel kernel over the pieces,
// splitting the active list around the pixels that saturated. The cost
// model charges the reference algorithm's full traversal (every run header
// and packed voxel of the contributing lines, identically to the traced
// twin), while the implementation reads only the live footprint; images
// and all counter totals stay bit-identical to scanlineTraced — see
// DESIGN.md for the reordering argument.
func (c *Ctx) scanlineUntraced(vRow int, cnt *Counters) int64 {
	f, M := c.F, c.M
	start := cnt.Cycles
	cnt.Scanlines++
	cnt.Cycles += CyclesPerLineSetup
	V := c.V
	c.initAct(vRow)
	// Opacity correction forces the exact scalar kernel: the correction
	// LUT is defined over float alphas and the fixed-point tier would
	// have to round-trip through it per pixel anyway. Non-composite modes
	// force it too (kernel resolution already rejects or falls back an
	// explicit packed request for them — this guard is the backstop for
	// callers that set Ctx fields directly).
	mip := c.Mode == rendermode.MIP
	packed := c.Kernel == cpudispatch.KernelPacked && c.alphaLUT == nil && !mip
	var pkv []uint64
	touchLo, touchHi := M.W, 0
	if packed {
		pkv = V.PackedVox()
		c.loadRowAcc(vRow)
	}

	// The slice loop accumulates its counter charges in locals and flushes
	// them once per scanline: the totals are plain int64 sums, so batching
	// is exactly associative and the flushed counters (and Cycles, charged
	// per unit) are bit-identical to the traced walk's running updates.
	var slices, runs, nvox, skips int64
	for idx := 0; idx < f.Nk; idx++ {
		// Row saturated: early ray termination ends the whole task. The
		// active list is empty exactly when Skip(0) reports a full row,
		// so the counter charge matches the traced walk.
		if len(c.act) == 0 {
			skips++
			break
		}
		k := f.KFront + idx*f.KStep
		slices++

		g, ok := c.sliceSetup(vRow, k)
		if !ok {
			continue // slice does not reach this scanline
		}

		// Window the encode-time span index of the contributing lines and
		// charge the cost model's full-line traversal in O(1) from the
		// offset tables: the run and voxel counts are sums over the same
		// ranges the traced walk charges span by span, and int64 addition
		// is order-independent, so counter identity with the simulator
		// holds even though the native decode below only touches the live
		// footprint.
		var lo0, cn0, vx0, lo1, cn1, vx1 []int32
		if g.have0 {
			s := k*V.Nj + g.j0
			a, b := V.SpanOff[s], V.SpanOff[s+1]
			lo0, cn0, vx0 = V.SpanLo[a:b], V.SpanCnt[a:b], V.SpanVox[a:b]
			runs += int64(V.RunOff[s+1] - V.RunOff[s])
			nvox += int64(V.VoxOff[s+1] - V.VoxOff[s])
		}
		if g.have1 {
			s := k*V.Nj + g.j0 + 1
			a, b := V.SpanOff[s], V.SpanOff[s+1]
			lo1, cn1, vx1 = V.SpanLo[a:b], V.SpanCnt[a:b], V.SpanVox[a:b]
			runs += int64(V.RunOff[s+1] - V.RunOff[s])
			nvox += int64(V.VoxOff[s+1] - V.VoxOff[s])
		}
		if len(lo0)+len(lo1) == 0 {
			continue
		}
		lead := 0
		if g.fractional {
			lead = 1
		}
		if packed {
			skips += mergeIntersectClassify(c, lo0, cn0, vx0, lo1, cn1, vx1, pkv, c.plane0, c.plane1, g.off, lead)
		} else {
			skips += mergeIntersectClassify(c, lo0, cn0, vx0, lo1, cn1, vx1, V.Vox, c.vlane0, c.vlane1, g.off, lead)
		}
		if len(c.live) == 0 {
			continue
		}
		if mip {
			c.compositeLiveMIP(vRow, &g, cnt)
		} else if packed {
			if lo := int(c.live[0].Lo); lo < touchLo {
				touchLo = lo
			}
			if hi := int(c.live[len(c.live)-1].Hi); hi > touchHi {
				touchHi = hi
			}
			c.compositeLivePacked(vRow, &g, cnt, pkv)
		} else {
			c.compositeLiveScalar(vRow, &g, cnt)
		}
		if len(c.sat) > 0 {
			c.applySat(vRow)
		}
	}
	cnt.Slices += slices
	cnt.Runs += runs
	cnt.VoxelsRead += nvox
	cnt.Skips += skips
	cnt.Cycles += slices*CyclesPerSliceSetup + runs*CyclesPerRun +
		nvox*CyclesPerVoxelCopy + skips*CyclesPerSkip
	if packed && touchLo < touchHi {
		c.flushRowAcc(vRow, touchLo, touchHi)
	}
	return cnt.Cycles - start
}

// initAct seeds the scanline's active list with the intervals of pixels
// the skip links do not mark opaque. It reads the links directly — link
// values name the length of the opaque run starting at a pixel — and
// charges nothing: the reference walk's link traversals are accounted
// where the merged spans actually encounter dead pixels.
func (c *Ctx) initAct(vRow int) {
	M := c.M
	links := M.Links[vRow*M.W : vRow*M.W+M.W]
	c.act = c.act[:0]
	u := 0
	for u < len(links) {
		if n := links[u]; n > 0 {
			u += int(n)
			continue
		}
		a := u
		for u < len(links) && links[u] == 0 {
			u++
		}
		c.act = append(c.act, pixSpan{a, u})
	}
}

// applySat splits the active list around the pixels the slice kernel just
// saturated (ascending, each inside some active interval) and marks them
// in the image's skip links so Opaque/RowOpaqueCount and any later traced
// pass see the same opacity state as the reference walk.
func (c *Ctx) applySat(vRow int) {
	M := c.M
	c.actNext = c.actNext[:0]
	ai := 0
	for _, s := range c.sat {
		u := int(s)
		M.MarkOpaque(u, vRow)
		for ai < len(c.act) && c.act[ai].Hi <= u {
			c.actNext = append(c.actNext, c.act[ai])
			ai++
		}
		a := c.act[ai]
		if a.Lo < u {
			c.actNext = append(c.actNext, pixSpan{a.Lo, u})
		}
		if u+1 < a.Hi {
			c.act[ai].Lo = u + 1
		} else {
			ai++
		}
	}
	c.actNext = append(c.actNext, c.act[ai:]...)
	c.act, c.actNext = c.actNext, c.act
	c.sat = c.sat[:0]
}

// scanlineTraced is the instrumented twin of scanlineUntraced, emitting the
// shared-array reference stream for the memory-system simulators. The
// arithmetic and counters are identical.
func (c *Ctx) scanlineTraced(vRow int, cnt *Counters) int64 {
	f, V, M := c.F, c.V, c.M
	start := cnt.Cycles
	cnt.Scanlines++
	cnt.Cycles += CyclesPerLineSetup

	for idx := 0; idx < f.Nk; idx++ {
		if M.Skip(0, vRow) >= M.W {
			c.Tracer.Read(c.Arrays.IntLinks, M.PixelIndex(0, vRow), 1)
			cnt.Skips++
			cnt.Cycles += CyclesPerSkip
			break
		}
		k := f.KFront + idx*f.KStep
		cnt.Slices++
		cnt.Cycles += CyclesPerSliceSetup

		g, ok := c.sliceSetup(vRow, k)
		if !ok {
			continue
		}

		c.spans0 = c.spans0[:0]
		c.spans1 = c.spans1[:0]
		if g.have0 {
			c.spans0 = V.AppendSpans(k, g.j0, c.spans0)
			c.decodeSpansTraced(k, g.j0, c.spans0, c.row0, cnt)
		}
		if g.have1 {
			c.spans1 = V.AppendSpans(k, g.j0+1, c.spans1)
			c.decodeSpansTraced(k, g.j0+1, c.spans1, c.row1, cnt)
		}
		if len(c.spans0)+len(c.spans1) == 0 {
			continue
		}
		c.mergePixelSpans(g.off, g.fractional)
		c.zeroGaps(c.spans0, c.row0, g.off)
		c.zeroGaps(c.spans1, c.row1, g.off)

		rowBase := vRow * M.W
		for _, ps := range c.merged {
			u := ps.Lo
			for u < ps.Hi {
				if M.Links[rowBase+u] > 0 {
					c.Tracer.Read(c.Arrays.IntLinks, rowBase+u, 1)
					u = M.Skip(u, vRow)
					cnt.Skips++
					cnt.Cycles += CyclesPerSkip
					continue
				}
				segStart := u
				for u < ps.Hi && M.Links[rowBase+u] == 0 {
					if c.compositePixel(vRow, u, g.off, g.w00, g.w10, g.w01, g.w11, cnt) {
						c.Tracer.Write(c.Arrays.IntLinks, rowBase+u, 1)
					}
					u++
				}
				if u > segStart {
					c.Tracer.Read(c.Arrays.IntPix, rowBase+segStart, u-segStart)
					c.Tracer.Write(c.Arrays.IntPix, rowBase+segStart, u-segStart)
					c.Tracer.Read(c.Arrays.IntLinks, rowBase+segStart, u-segStart)
				}
			}
		}
	}
	return cnt.Cycles - start
}

// mergeIntersectClassify is the untraced path's per-slice sweep: it merges
// the two contributing lines' SoA span windows into coalesced pixel
// intervals (the same intervals the traced path's mergePixelSpans
// produces), intersects each with the active list, and appends every
// surviving piece to c.live with its per-line tap source resolved (staged
// into the scratch lanes only for span-edge straddles). It returns the
// number of skip-link traversals the reference walk would perform: one per
// maximal dead gap each merged interval encounters. That count is exact
// because the reference walk calls Skip once whenever it lands on a marked
// pixel and the call jumps over the whole maximal run; hoisting the
// intersection before the compositing is safe because a pixel saturating
// can only mark positions at or behind itself, so no link ahead of the
// walk changes while a slice composites (DESIGN.md spells out the
// argument). Everything runs in one pass with all cursors in locals, so
// the per-slice cost is one call regardless of how many pieces survive.
func mergeIntersectClassify[T classify.Voxel | uint64](c *Ctx, lo0, cn0, vx0, lo1, cn1, vx1 []int32, src, lane0, lane1 []T, off, lead int) int64 {
	c.live = c.live[:0]
	act := c.act
	W := c.M.W
	const inf = int(1) << 30
	i0, i1 := 0, 0
	ai := 0
	n0, n1 := len(lo0), len(lo1)
	curLo, curHi := 0, -1 // pending merged interval; curHi < 0 means none
	f0, f1 := 0, 0        // span-window start of the pending interval, per line
	var skips int64
	for {
		// Pull the next span's pixel interval (or a sentinel once both
		// streams are exhausted) and extend the pending merged interval
		// while they touch; a gap — or exhaustion — finalizes the pending
		// interval below before starting the next.
		plo, phi := inf, inf
		from0 := false
		if i0 < n0 || i1 < n1 {
			var s, e int
			if i1 >= n1 || (i0 < n0 && lo0[i0] <= lo1[i1]) {
				s = int(lo0[i0])
				e = s + int(cn0[i0])
				i0++
				from0 = true
			} else {
				s = int(lo1[i1])
				e = s + int(cn1[i1])
				i1++
			}
			// A voxel span [s, e) is sampled by pixels [s+off-lead, e+off),
			// clamped to the row.
			plo = s + off - lead
			phi = e + off
			if plo < 0 {
				plo = 0
			}
			if phi > W {
				phi = W
			}
			if plo >= phi {
				continue
			}
			if curHi >= 0 && plo <= curHi {
				if phi > curHi {
					curHi = phi
				}
				continue
			}
		}
		if curHi >= 0 {
			// Finalize [curLo, curHi): intersect with the active list and
			// classify each surviving piece's tap sources against the
			// interval's span windows [f0, i0) and [f1, i1). The windows
			// may include the gap span that triggered this finalize, but
			// its pixel projection starts past curHi so it can never
			// overlap a piece's tap range; the common windows — empty, or
			// a single span — classify without any cursor walk.
			w0n := i0 - f0
			w1n := i1 - f1
			var s0, e0, s1, e1 int
			if w0n == 1 {
				s0 = int(lo0[f0])
				e0 = s0 + int(cn0[f0])
			}
			if w1n == 1 {
				s1 = int(lo1[f1])
				e1 = s1 + int(cn1[f1])
			}
			cc0, cc1 := f0, f1
			u := curLo
			for ai < len(act) && act[ai].Hi <= u {
				ai++
			}
			for u < curHi {
				if ai == len(act) {
					skips++ // one link jump clears the rest of the interval
					break
				}
				a := act[ai]
				if a.Lo > u {
					skips++ // jump over the dead gap in front of act[ai]
					u = a.Lo
					if u >= curHi {
						break
					}
				}
				e := a.Hi
				if e > curHi {
					e = curHi
				}
				x0 := u - off // first tap of the piece (>= -1)
				x1 := e - off // last tap, inclusive
				b0 := int32(laneZero)
				if w0n == 1 {
					if s0 <= x0 && x1 < e0 {
						b0 = vx0[f0] + int32(x0-s0)
					} else if s0 <= x1 && x0 < e0 {
						fillLane(lo0, cn0, vx0, src, lane0, f0, x0, x1)
						b0 = ^int32(x0 + 1)
					}
				} else if w0n > 1 {
					for cc0 < i0 && int(lo0[cc0])+int(cn0[cc0]) <= x0 {
						cc0++
					}
					if cc0 < i0 && int(lo0[cc0]) <= x1 {
						if s := int(lo0[cc0]); s <= x0 && x1 < s+int(cn0[cc0]) {
							b0 = vx0[cc0] + int32(x0-s)
						} else {
							fillLane(lo0, cn0, vx0, src, lane0, cc0, x0, x1)
							b0 = ^int32(x0 + 1)
						}
					}
				}
				b1 := int32(laneZero)
				if w1n == 1 {
					if s1 <= x0 && x1 < e1 {
						b1 = vx1[f1] + int32(x0-s1)
					} else if s1 <= x1 && x0 < e1 {
						fillLane(lo1, cn1, vx1, src, lane1, f1, x0, x1)
						b1 = ^int32(x0 + 1)
					}
				} else if w1n > 1 {
					for cc1 < i1 && int(lo1[cc1])+int(cn1[cc1]) <= x0 {
						cc1++
					}
					if cc1 < i1 && int(lo1[cc1]) <= x1 {
						if s := int(lo1[cc1]); s <= x0 && x1 < s+int(cn1[cc1]) {
							b1 = vx1[cc1] + int32(x0-s)
						} else {
							fillLane(lo1, cn1, vx1, src, lane1, cc1, x0, x1)
							b1 = ^int32(x0 + 1)
						}
					}
				}
				c.live = append(c.live, liveIv{int32(u), int32(e), b0, b1})
				u = e
				if u >= curHi {
					break
				}
				ai++
			}
		}
		if plo == inf {
			return skips
		}
		curLo, curHi = plo, phi
		f0, f1 = i0, i1
		if from0 {
			f0 = i0 - 1
		} else {
			f1 = i1 - 1
		}
	}
}

// fillLane stages one straddling piece's taps (inclusive tap range
// [x0, x1]) into the scratch lane — voxel x at lane index x+1, gaps
// between the line's spans zeroed — starting from span cursor i.
func fillLane[T classify.Voxel | uint64](lo, cn, vx []int32, src, lane []T, i, x0, x1 int) {
	// Manual element loops: segments are typically a handful of voxels, so
	// plain stores beat the memmove/memclr call overhead of copy/clear.
	n := len(lo)
	x := x0
	j := i
	for x <= x1 {
		if j < n && int(lo[j]) <= x {
			e := int(lo[j]) + int(cn[j])
			stop := x1 + 1
			if e < stop {
				stop = e
			}
			b := int(vx[j]) + x - int(lo[j])
			for ; x < stop; x++ {
				lane[x+1] = src[b]
				b++
			}
			if stop == e {
				j++
			}
			continue
		}
		g := x1 + 1
		if j < n && int(lo[j]) < g {
			g = int(lo[j])
		}
		var z T
		for ; x < g; x++ {
			lane[x+1] = z
		}
	}
}

// decodeSpansTraced streams the span voxels into the scratch row and emits
// the RunLens/Vox reference stream; counter totals match the untraced
// decode exactly.
func (c *Ctx) decodeSpansTraced(k, j int, spans []rle.Span, row []classify.Voxel, cnt *Counters) {
	s := c.V.ScanlineID(k, j)
	runs := int(c.V.RunOff[s+1] - c.V.RunOff[s])
	cnt.Runs += int64(runs)
	cnt.Cycles += int64(runs) * CyclesPerRun
	if runs > 0 {
		c.Tracer.Read(c.Arrays.RunLens, int(c.V.RunOff[s]), runs)
	}
	voxBase := int(c.V.VoxOff[s])
	_, vox := c.V.Scanline(k, j)
	for _, sp := range spans {
		copy(row[sp.Start:sp.End], vox[sp.VoxStart:sp.VoxStart+sp.End-sp.Start])
		n := sp.End - sp.Start
		cnt.VoxelsRead += int64(n)
		cnt.Cycles += int64(n) * CyclesPerVoxelCopy
		c.Tracer.Read(c.Arrays.Vox, voxBase+sp.VoxStart, n)
	}
}

// zeroGaps zeroes the scratch-row positions inside the merged spans' voxel
// footprint that the line's own spans did not fill, so the pixel kernel can
// read the rows unconditionally. Both span lists are sorted and disjoint,
// so one monotone sweep suffices; the work is bounded by the footprint
// length and is typically a few voxels around each span edge.
func (c *Ctx) zeroGaps(spans []rle.Span, row []classify.Voxel, off int) {
	si := 0
	for _, ps := range c.merged {
		// Pixels [Lo, Hi) read voxels [Lo-off, Hi-off+1), clamped to the row.
		a := ps.Lo - off
		b := ps.Hi - off + 1
		if a < 0 {
			a = 0
		}
		if b > len(row) {
			b = len(row)
		}
		for a < b {
			for si < len(spans) && spans[si].End <= a {
				si++
			}
			if si < len(spans) && spans[si].Start <= a {
				a = spans[si].End // already filled through the span
				continue
			}
			e := b
			if si < len(spans) && spans[si].Start < b {
				e = spans[si].Start
			}
			clear(row[a:e])
			a = e
		}
	}
}

// mergePixelSpans converts the voxel spans of both contributing lines into
// a coalesced, sorted list of pixel intervals on the intermediate scanline.
// A voxel span [s, e) is sampled by pixels [s+off-1, e+off) when wx > 0 and
// [s+off, e+off) when wx == 0.
func (c *Ctx) mergePixelSpans(off int, fractional bool) {
	c.merged = c.merged[:0]
	lead := 0
	if fractional {
		lead = 1
	}
	i0, i1 := 0, 0
	W := c.M.W
	for i0 < len(c.spans0) || i1 < len(c.spans1) {
		var sp rle.Span
		if i1 >= len(c.spans1) || (i0 < len(c.spans0) && c.spans0[i0].Start <= c.spans1[i1].Start) {
			sp = c.spans0[i0]
			i0++
		} else {
			sp = c.spans1[i1]
			i1++
		}
		lo := sp.Start + off - lead
		hi := sp.End + off
		if lo < 0 {
			lo = 0
		}
		if hi > W {
			hi = W
		}
		if lo >= hi {
			continue
		}
		if n := len(c.merged); n > 0 && lo <= c.merged[n-1].Hi {
			if hi > c.merged[n-1].Hi {
				c.merged[n-1].Hi = hi
			}
		} else {
			c.merged = append(c.merged, pixSpan{lo, hi})
		}
	}
}

// compositePixel resamples the four contributing voxels at pixel u and
// blends the sample into the intermediate image, front to back. It returns
// whether the pixel just saturated (so the traced path can report the
// skip-link write). The accumulation is straight-line arithmetic over the
// u8f unpack table; zero voxels and zero weights contribute exact float
// zeros, so no per-corner branches are needed and the result stays
// bit-identical to the guarded reference formulation.
func (c *Ctx) compositePixel(vRow, u, off int, w00, w10, w01, w11 float32, cnt *Counters) bool {
	i0 := u - off
	var v00, v10, v01, v11 classify.Voxel
	if uint(i0) < uint(len(c.row0)) {
		v00 = c.row0[i0]
		v01 = c.row1[i0]
	}
	if i1 := i0 + 1; uint(i1) < uint(len(c.row0)) {
		v10 = c.row0[i1]
		v11 = c.row1[i1]
	}
	// Premultiplied resampling: alpha and alpha-weighted color.
	aa := w00*u8f255[v00>>24] + w10*u8f255[v10>>24] +
		w01*u8f255[v01>>24] + w11*u8f255[v11>>24]
	if aa < 1.0/512 {
		cnt.EmptyPixels++
		cnt.Cycles += CyclesPerEmptyPixel
		return false
	}
	// View-dependent opacity correction (identity when disabled). The
	// premultiplied colors scale by the same factor so hue is preserved.
	scale := float32(1)
	if c.alphaLUT != nil {
		corrected := c.correctAlpha(aa)
		scale = corrected / aa
		aa = corrected
	}
	a0 := w00 * u8f[v00>>24] * (1.0 / 255)
	a1 := w10 * u8f[v10>>24] * (1.0 / 255)
	a2 := w01 * u8f[v01>>24] * (1.0 / 255)
	a3 := w11 * u8f[v11>>24] * (1.0 / 255)
	ar := a0*u8f[(v00>>16)&0xff] + a1*u8f[(v10>>16)&0xff] + a2*u8f[(v01>>16)&0xff] + a3*u8f[(v11>>16)&0xff]
	ag := a0*u8f[(v00>>8)&0xff] + a1*u8f[(v10>>8)&0xff] + a2*u8f[(v01>>8)&0xff] + a3*u8f[(v11>>8)&0xff]
	ab := a0*u8f[v00&0xff] + a1*u8f[v10&0xff] + a2*u8f[v01&0xff] + a3*u8f[v11&0xff]

	M := c.M
	p := 4 * (vRow*M.W + u)
	t := scale * (1 - M.Pix[p+3])
	M.Pix[p] += t * ar * (1.0 / 255)
	M.Pix[p+1] += t * ag * (1.0 / 255)
	M.Pix[p+2] += t * ab * (1.0 / 255)
	M.Pix[p+3] += (1 - M.Pix[p+3]) * aa
	cnt.Samples++
	cnt.Cycles += CyclesPerSample
	if M.Pix[p+3] >= img.OpacityThreshold {
		M.MarkOpaque(u, vRow)
		return true
	}
	return false
}

// compositeLiveScalar is the untraced hot loop: the exact float32 pixel
// kernel over the precollected live intervals. It performs exactly the
// arithmetic of compositePixel per pixel — same unpack tables, same
// grouping, same order — but reads its four bilinear taps from the padded
// lanes with no bounds or validity branches: every tap window and pixel
// quad is a fixed-shape subslice, so the inner loop compiles without bounds
// checks (verified with -d=ssa/check_bce). Images and counter totals stay
// bit-identical to the traced path.
func (c *Ctx) compositeLiveScalar(vRow int, g *sliceGeom, cnt *Counters) {
	M := c.M
	rowBase := vRow * M.W
	pix := M.Pix[4*rowBase : 4*(rowBase+M.W)]
	vox := c.V.Vox
	w00, w10, w01, w11 := g.w00, g.w10, g.w01, g.w11
	lut := c.alphaLUT
	var samples, empty int64
	for _, iv := range c.live {
		n := int(iv.Hi - iv.Lo)
		t0 := laneSel(iv.B0, vox, c.vlane0, c.zvlane)[:n+1]
		t1 := laneSel(iv.B1, vox, c.vlane1, c.zvlane)
		t1 = t1[:len(t0)] // teach the compiler the lanes are the same length
		lo := int(iv.Lo)
		v00, v01 := t0[0], t1[0]
		for j := 1; j < len(t0); j++ {
			v10 := t0[j]
			v11 := t1[j]
			aa := w00*u8f255[v00>>24] + w10*u8f255[v10>>24] +
				w01*u8f255[v01>>24] + w11*u8f255[v11>>24]
			if aa < 1.0/512 {
				empty++
				v00, v01 = v10, v11
				continue
			}
			scale := float32(1)
			if lut != nil {
				corrected := c.correctAlpha(aa)
				scale = corrected / aa
				aa = corrected
			}
			a0 := w00 * u8f[v00>>24] * (1.0 / 255)
			a1 := w10 * u8f[v10>>24] * (1.0 / 255)
			a2 := w01 * u8f[v01>>24] * (1.0 / 255)
			a3 := w11 * u8f[v11>>24] * (1.0 / 255)
			ar := a0*u8f[(v00>>16)&0xff] + a1*u8f[(v10>>16)&0xff] + a2*u8f[(v01>>16)&0xff] + a3*u8f[(v11>>16)&0xff]
			ag := a0*u8f[(v00>>8)&0xff] + a1*u8f[(v10>>8)&0xff] + a2*u8f[(v01>>8)&0xff] + a3*u8f[(v11>>8)&0xff]
			ab := a0*u8f[v00&0xff] + a1*u8f[v10&0xff] + a2*u8f[v01&0xff] + a3*u8f[v11&0xff]

			u := lo + j - 1
			px := pix[4*u : 4*u+4 : 4*u+4]
			t := scale * (1 - px[3])
			px[0] += t * ar * (1.0 / 255)
			px[1] += t * ag * (1.0 / 255)
			px[2] += t * ab * (1.0 / 255)
			px[3] += (1 - px[3]) * aa
			samples++
			if px[3] >= img.OpacityThreshold {
				c.sat = append(c.sat, int32(u))
			}
			v00, v01 = v10, v11
		}
	}
	cnt.Samples += samples
	cnt.EmptyPixels += empty
	cnt.Cycles += samples*CyclesPerSample + empty*CyclesPerEmptyPixel
}

// compositeLiveMIP is the untraced MIP pixel kernel: the same bilinear
// resampling as compositeLiveScalar (same unpack tables, same grouping, so
// per-sample values are bit-identical to the composite kernel's), but the
// accumulation keeps the per-channel maximum of the premultiplied sample
// instead of over-blending it. Float max is exactly order-independent, and
// every intermediate scanline is still owned front-to-back by one worker,
// so serial, old-parallel and new-parallel MIP frames are byte-identical —
// the invariant FuzzMIPOrderInvariance pins. No pixel ever saturates, so
// the kernel never appends to c.sat, the active list never shrinks and
// early ray termination is structurally disabled. The opacity-correction
// LUT is deliberately ignored: a maximum over a ray's samples does not
// depend on their spacing, so MIP output is identical with and without
// correction (DESIGN.md section 14).
func (c *Ctx) compositeLiveMIP(vRow int, g *sliceGeom, cnt *Counters) {
	M := c.M
	rowBase := vRow * M.W
	pix := M.Pix[4*rowBase : 4*(rowBase+M.W)]
	vox := c.V.Vox
	w00, w10, w01, w11 := g.w00, g.w10, g.w01, g.w11
	var samples, empty int64
	for _, iv := range c.live {
		n := int(iv.Hi - iv.Lo)
		t0 := laneSel(iv.B0, vox, c.vlane0, c.zvlane)[:n+1]
		t1 := laneSel(iv.B1, vox, c.vlane1, c.zvlane)
		t1 = t1[:len(t0)] // teach the compiler the lanes are the same length
		lo := int(iv.Lo)
		v00, v01 := t0[0], t1[0]
		for j := 1; j < len(t0); j++ {
			v10 := t0[j]
			v11 := t1[j]
			aa := w00*u8f255[v00>>24] + w10*u8f255[v10>>24] +
				w01*u8f255[v01>>24] + w11*u8f255[v11>>24]
			if aa < 1.0/512 {
				empty++
				v00, v01 = v10, v11
				continue
			}
			a0 := w00 * u8f[v00>>24] * (1.0 / 255)
			a1 := w10 * u8f[v10>>24] * (1.0 / 255)
			a2 := w01 * u8f[v01>>24] * (1.0 / 255)
			a3 := w11 * u8f[v11>>24] * (1.0 / 255)
			ar := a0*u8f[(v00>>16)&0xff] + a1*u8f[(v10>>16)&0xff] + a2*u8f[(v01>>16)&0xff] + a3*u8f[(v11>>16)&0xff]
			ag := a0*u8f[(v00>>8)&0xff] + a1*u8f[(v10>>8)&0xff] + a2*u8f[(v01>>8)&0xff] + a3*u8f[(v11>>8)&0xff]
			ab := a0*u8f[v00&0xff] + a1*u8f[v10&0xff] + a2*u8f[v01&0xff] + a3*u8f[v11&0xff]

			u := lo + j - 1
			px := pix[4*u : 4*u+4 : 4*u+4]
			px[0] = max(px[0], ar*(1.0/255))
			px[1] = max(px[1], ag*(1.0/255))
			px[2] = max(px[2], ab*(1.0/255))
			px[3] = max(px[3], aa)
			samples++
			v00, v01 = v10, v11
		}
	}
	cnt.Samples += samples
	cnt.EmptyPixels += empty
	cnt.Cycles += samples*CyclesPerSample + empty*CyclesPerEmptyPixel
}

func alphaOf(v classify.Voxel) float32 {
	return u8f[v>>24] * (1.0 / 255)
}
