// Package composite implements the compositing phase of the shear-warp
// algorithm: streaming through the run-length-encoded volume in scanline
// order and accumulating the sheared slices into the intermediate image,
// front to back, with early ray termination via the image's opaque-pixel
// skip links.
//
// The unit of work is one intermediate-image scanline — the task
// granularity of both parallel algorithms in the paper — exposed as
// Ctx.Scanline. The kernel does the real arithmetic and, when a Tracer is
// attached, reports the shared-array ranges it touches so the memory-system
// simulators can replay its reference stream. Work cycles are counted with
// an explicit cost model (the Pixie basic-block-counting analog).
//
// Scanline is split into a traced and an untraced variant: native frames
// (Tracer == nil) run a branch-free fast path with no trace.Array
// indirection or per-pixel tracer checks, while the simulators get the
// instrumented twin. Both share the per-pixel arithmetic, so images and
// counters are bit-identical across the two paths.
package composite

import (
	"math"

	"shearwarp/internal/classify"
	"shearwarp/internal/img"
	"shearwarp/internal/rle"
	"shearwarp/internal/trace"
	"shearwarp/internal/xform"
)

// Cost model: cycle counts per primitive operation, playing the role of the
// paper's basic-block instruction counts on a 1-CPI processor. The ratios
// matter more than absolute values: compositing a sample is an order of
// magnitude more work than stepping over a run header, matching Figure 2's
// shear-warp breakdown where compositing dominates looping.
const (
	CyclesPerSample     = 22 // bilinear gather of 4 voxels + composite + test
	CyclesPerEmptyPixel = 3  // pixel visited but sample transparent
	CyclesPerSkip       = 2  // following one opaque-run link
	CyclesPerRun        = 4  // decoding one run header
	CyclesPerVoxelCopy  = 2  // streaming one packed voxel out of the RLE
	CyclesPerSliceSetup = 14 // per-slice shear setup for a scanline
	CyclesPerLineSetup  = 30 // per-scanline task setup
)

// u8f maps a byte to its exact float32 value, hoisting the int-to-float
// conversions out of the per-pixel unpack arithmetic. Integers up to 255
// are exactly representable, so table lookups are bit-identical to inline
// conversions.
var u8f = func() (t [256]float32) {
	for i := range t {
		t[i] = float32(i)
	}
	return
}()

// u8f255 tabulates u8f[i] * (1/255) — the normalized alpha unpack — using
// the identical multiplication, so entries are bit-identical to computing
// the product per pixel.
var u8f255 = func() (t [256]float32) {
	for i := range t {
		t[i] = u8f[i] * (1.0 / 255)
	}
	return
}()

// Counters aggregates kernel work. Cycles is the modeled busy time; the
// remaining fields break it down for the Figure 2-style analyses.
type Counters struct {
	Cycles      int64 // total modeled work cycles
	Samples     int64 // composited (resampled + blended) samples
	EmptyPixels int64 // pixels visited whose resampled alpha was ~0
	Skips       int64 // opaque-run link traversals
	Runs        int64 // run headers decoded
	VoxelsRead  int64 // packed voxels streamed from the RLE
	Slices      int64 // slice visits across scanline tasks
	Scanlines   int64 // scanline tasks executed
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Cycles += other.Cycles
	c.Samples += other.Samples
	c.EmptyPixels += other.EmptyPixels
	c.Skips += other.Skips
	c.Runs += other.Runs
	c.VoxelsRead += other.VoxelsRead
	c.Slices += other.Slices
	c.Scanlines += other.Scanlines
}

// LoopingCycles returns the portion of Cycles spent on control overhead and
// coherence-structure traversal rather than resampling/compositing — the
// paper's "looping time" (Figure 2).
func (c *Counters) LoopingCycles() int64 {
	return c.Cycles - c.Samples*CyclesPerSample
}

// Arrays holds the trace handles of the shared arrays the kernel touches.
// A zero value (invalid handles) disables tracing of that array.
type Arrays struct {
	RunLens  trace.Array // rle.Volume.RunLens, elem 2 bytes
	Vox      trace.Array // rle.Volume.Vox, elem 4 bytes
	IntPix   trace.Array // img.Intermediate.Pix, elem 16 bytes per pixel
	IntLinks trace.Array // img.Intermediate.Links, elem 4 bytes
}

// RegisterArrays lays out the kernel's shared arrays in an address space.
func RegisterArrays(s *trace.AddrSpace, v *rle.Volume, m *img.Intermediate) Arrays {
	return Arrays{
		RunLens:  s.Register("rle.RunLens", 2, len(v.RunLens)),
		Vox:      s.Register("rle.Vox", 4, len(v.Vox)),
		IntPix:   s.Register("int.Pix", 16, m.W*m.H),
		IntLinks: s.Register("int.Links", 4, m.W*m.H),
	}
}

// Ctx carries everything one processor needs to composite scanlines. Each
// simulated or native processor owns its own Ctx (the scratch buffers are
// private); F, V and M are shared. A Ctx may be rebound to a new frame with
// Bind, so renderers can pool contexts instead of allocating per frame.
type Ctx struct {
	F *xform.Factorization
	V *rle.Volume
	M *img.Intermediate

	Tracer trace.Tracer // nil in native mode
	Arrays Arrays

	// alphaLUT, when non-nil, applies Lacroute's view-dependent opacity
	// correction: stored opacities assume unit sample spacing, but the
	// shear samples once per slice, spacing the samples
	// d = sqrt(1 + Si^2 + Sj^2) apart along the ray, so the corrected
	// opacity is 1 - (1-a)^d. Enable with EnableOpacityCorrection.
	alphaLUT []float32
	lutBuf   []float32 // backing storage, reused across rebinds

	// Scratch, private per processor. Per slice, the rows hold valid data
	// (decoded voxels, or zero) only over the voxel footprint of the merged
	// pixel spans: decode fills the spans and zeroGaps zeroes the footprint
	// between them, so the pixel kernel reads the rows unconditionally and
	// nothing outside the footprint is ever touched — the full-width clears
	// of a naive scratch wipe never happen.
	row0, row1     []classify.Voxel
	spans0, spans1 []rle.Span
	merged         []pixSpan
}

// lutSize is the resolution of the opacity-correction table; resampled
// alphas index it linearly.
const lutSize = 1024

// EnableOpacityCorrection builds the per-frame correction table from the
// factorization's shear coefficients. Every processor rendering the same
// frame must make the same choice, or images diverge.
func (c *Ctx) EnableOpacityCorrection() {
	d := math.Sqrt(1 + c.F.Si*c.F.Si + c.F.Sj*c.F.Sj)
	if cap(c.lutBuf) < lutSize+1 {
		c.lutBuf = make([]float32, lutSize+1)
	}
	c.lutBuf = c.lutBuf[:lutSize+1]
	for i := 0; i <= lutSize; i++ {
		a := float64(i) / lutSize
		c.lutBuf[i] = float32(1 - math.Pow(1-a, d))
	}
	c.alphaLUT = c.lutBuf
}

// correctAlpha maps a resampled opacity through the correction table (a
// no-op factor of 1 when correction is disabled).
func (c *Ctx) correctAlpha(aa float32) float32 {
	if c.alphaLUT == nil {
		return aa
	}
	idx := int(aa * lutSize)
	if idx < 0 {
		idx = 0
	}
	if idx >= lutSize {
		idx = lutSize
	}
	return c.alphaLUT[idx]
}

// pixSpan is a pixel-index interval [Lo, Hi) of the intermediate scanline
// that can receive non-transparent samples from the current slice.
type pixSpan struct{ Lo, Hi int }

// NewCtx builds a per-processor compositing context.
func NewCtx(f *xform.Factorization, v *rle.Volume, m *img.Intermediate) *Ctx {
	c := &Ctx{}
	c.Bind(f, v, m)
	return c
}

// Bind points an existing context at a new frame, reusing its scratch
// buffers when they are large enough. It resets the tracer and the opacity
// correction (re-enable per frame as needed), so a pooled context always
// starts in native mode.
func (c *Ctx) Bind(f *xform.Factorization, v *rle.Volume, m *img.Intermediate) {
	c.F, c.V, c.M = f, v, m
	c.Tracer = nil
	c.Arrays = Arrays{}
	c.alphaLUT = nil
	if cap(c.row0) < v.Ni {
		c.row0 = make([]classify.Voxel, v.Ni)
		c.row1 = make([]classify.Voxel, v.Ni)
	} else {
		// Stale contents are harmless: every slice revalidates the rows
		// over the footprint it reads before compositing.
		c.row0 = c.row0[:v.Ni]
		c.row1 = c.row1[:v.Ni]
	}
	// Size the span scratch for the densest scanline of the encoding so
	// steady-state compositing never grows an append (non-transparent runs
	// are at most half the run headers, plus one for an odd tail).
	maxSpans := v.MaxLineRuns/2 + 1
	if cap(c.spans0) < maxSpans {
		c.spans0 = make([]rle.Span, 0, maxSpans)
		c.spans1 = make([]rle.Span, 0, maxSpans)
	}
	if cap(c.merged) < 2*maxSpans {
		c.merged = make([]pixSpan, 0, 2*maxSpans)
	}
}

// sliceGeom is the per-slice resampling setup shared by the traced and
// untraced scanline kernels.
type sliceGeom struct {
	j0                 int
	have0, have1       bool
	off                int
	fractional         bool
	w00, w10, w01, w11 float32
}

// sliceSetup computes the shear geometry of slice k against intermediate
// row vRow. ok is false when the slice cannot reach the scanline.
func (c *Ctx) sliceSetup(vRow, k int) (g sliceGeom, ok bool) {
	f := c.F
	tu, tv := f.SliceShift(k)
	y := float64(vRow) - tv
	j0 := int(math.Floor(y))
	wy := y - float64(j0)
	if j0 < -1 || j0 >= f.Nj {
		return g, false
	}
	g.j0 = j0
	g.have0 = j0 >= 0 && wy < 1
	g.have1 = j0+1 < f.Nj && wy > 0

	// Constant resampling weights along the row (see Factorization).
	tuInt := int(math.Floor(tu))
	tuFrac := tu - float64(tuInt)
	g.off = tuInt // pixel u gathers voxels i0 = u-off(-1) and i0+1
	wx := 0.0
	if tuFrac > 0 {
		g.off = tuInt + 1
		wx = 1 - tuFrac
	}
	g.fractional = wx > 0
	g.w00 = float32((1 - wx) * (1 - wy))
	g.w10 = float32(wx * (1 - wy))
	g.w01 = float32((1 - wx) * wy)
	g.w11 = float32(wx * wy)
	return g, true
}

// Scanline composites intermediate-image row vRow across all slices, front
// to back, and returns the work cycles it spent. The returned cycles are
// also accumulated into cnt along with the detailed counters.
func (c *Ctx) Scanline(vRow int, cnt *Counters) int64 {
	if c.Tracer == nil {
		return c.scanlineUntraced(vRow, cnt)
	}
	return c.scanlineTraced(vRow, cnt)
}

// scanlineUntraced is the native fast path: no tracer checks or trace.Array
// indirection anywhere in the slice, span and pixel loops.
func (c *Ctx) scanlineUntraced(vRow int, cnt *Counters) int64 {
	f, M := c.F, c.M
	start := cnt.Cycles
	cnt.Scanlines++
	cnt.Cycles += CyclesPerLineSetup

	for idx := 0; idx < f.Nk; idx++ {
		// Row saturated: early ray termination ends the whole task.
		if M.Skip(0, vRow) >= M.W {
			cnt.Skips++
			cnt.Cycles += CyclesPerSkip
			break
		}
		k := f.KFront + idx*f.KStep
		cnt.Slices++
		cnt.Cycles += CyclesPerSliceSetup

		g, ok := c.sliceSetup(vRow, k)
		if !ok {
			continue // slice does not reach this scanline
		}

		// Decode the contributing spans of up to two volume scanlines into
		// the scratch rows (one fused pass over the run headers), collect
		// the union of pixel intervals they can affect, and zero the
		// footprint gaps so the pixel kernel reads unconditionally.
		c.spans0 = c.spans0[:0]
		c.spans1 = c.spans1[:0]
		if g.have0 {
			c.spans0 = c.decodeLineUntraced(k, g.j0, c.spans0, c.row0, cnt)
		}
		if g.have1 {
			c.spans1 = c.decodeLineUntraced(k, g.j0+1, c.spans1, c.row1, cnt)
		}
		if len(c.spans0)+len(c.spans1) == 0 {
			continue
		}
		c.mergePixelSpans(g.off, g.fractional)
		c.zeroGaps(c.spans0, c.row0, g.off)
		c.zeroGaps(c.spans1, c.row1, g.off)

		rowBase := vRow * M.W
		for _, ps := range c.merged {
			u := ps.Lo
			for u < ps.Hi {
				// Early ray termination: hop over saturated pixels.
				if M.Links[rowBase+u] > 0 {
					u = M.Skip(u, vRow)
					cnt.Skips++
					cnt.Cycles += CyclesPerSkip
					continue
				}
				// Composite a contiguous live segment.
				u = c.compositeSegment(vRow, u, ps.Hi, g.off, g.w00, g.w10, g.w01, g.w11, cnt)
			}
		}
	}
	return cnt.Cycles - start
}

// scanlineTraced is the instrumented twin of scanlineUntraced, emitting the
// shared-array reference stream for the memory-system simulators. The
// arithmetic and counters are identical.
func (c *Ctx) scanlineTraced(vRow int, cnt *Counters) int64 {
	f, V, M := c.F, c.V, c.M
	start := cnt.Cycles
	cnt.Scanlines++
	cnt.Cycles += CyclesPerLineSetup

	for idx := 0; idx < f.Nk; idx++ {
		if M.Skip(0, vRow) >= M.W {
			c.Tracer.Read(c.Arrays.IntLinks, M.PixelIndex(0, vRow), 1)
			cnt.Skips++
			cnt.Cycles += CyclesPerSkip
			break
		}
		k := f.KFront + idx*f.KStep
		cnt.Slices++
		cnt.Cycles += CyclesPerSliceSetup

		g, ok := c.sliceSetup(vRow, k)
		if !ok {
			continue
		}

		c.spans0 = c.spans0[:0]
		c.spans1 = c.spans1[:0]
		if g.have0 {
			c.spans0 = V.AppendSpans(k, g.j0, c.spans0)
			c.decodeSpansTraced(k, g.j0, c.spans0, c.row0, cnt)
		}
		if g.have1 {
			c.spans1 = V.AppendSpans(k, g.j0+1, c.spans1)
			c.decodeSpansTraced(k, g.j0+1, c.spans1, c.row1, cnt)
		}
		if len(c.spans0)+len(c.spans1) == 0 {
			continue
		}
		c.mergePixelSpans(g.off, g.fractional)
		c.zeroGaps(c.spans0, c.row0, g.off)
		c.zeroGaps(c.spans1, c.row1, g.off)

		rowBase := vRow * M.W
		for _, ps := range c.merged {
			u := ps.Lo
			for u < ps.Hi {
				if M.Links[rowBase+u] > 0 {
					c.Tracer.Read(c.Arrays.IntLinks, rowBase+u, 1)
					u = M.Skip(u, vRow)
					cnt.Skips++
					cnt.Cycles += CyclesPerSkip
					continue
				}
				segStart := u
				for u < ps.Hi && M.Links[rowBase+u] == 0 {
					if c.compositePixel(vRow, u, g.off, g.w00, g.w10, g.w01, g.w11, cnt) {
						c.Tracer.Write(c.Arrays.IntLinks, rowBase+u, 1)
					}
					u++
				}
				if u > segStart {
					c.Tracer.Read(c.Arrays.IntPix, rowBase+segStart, u-segStart)
					c.Tracer.Write(c.Arrays.IntPix, rowBase+segStart, u-segStart)
					c.Tracer.Read(c.Arrays.IntLinks, rowBase+segStart, u-segStart)
				}
			}
		}
	}
	return cnt.Cycles - start
}

// decodeLineUntraced walks the run headers of scanline (k, j) once,
// appending the non-transparent spans to spans while streaming their packed
// voxels into the scratch row and charging the traversal costs.
func (c *Ctx) decodeLineUntraced(k, j int, spans []rle.Span, row []classify.Voxel, cnt *Counters) []rle.Span {
	s := c.V.ScanlineID(k, j)
	rl := c.V.RunLens[c.V.RunOff[s]:c.V.RunOff[s+1]]
	vox := c.V.Vox[c.V.VoxOff[s]:c.V.VoxOff[s+1]]
	cnt.Runs += int64(len(rl))
	cnt.Cycles += int64(len(rl)) * CyclesPerRun
	i, vi := 0, 0
	for r := 0; r < len(rl); r += 2 {
		i += int(rl[r])
		if r+1 < len(rl) {
			o := int(rl[r+1])
			if o > 0 {
				spans = append(spans, rle.Span{Start: i, End: i + o, VoxStart: vi})
				copy(row[i:i+o], vox[vi:vi+o])
				cnt.VoxelsRead += int64(o)
				cnt.Cycles += int64(o) * CyclesPerVoxelCopy
				i += o
				vi += o
			}
		}
	}
	return spans
}

// decodeSpansTraced streams the span voxels into the scratch row and emits
// the RunLens/Vox reference stream; counter totals match the untraced
// decode exactly.
func (c *Ctx) decodeSpansTraced(k, j int, spans []rle.Span, row []classify.Voxel, cnt *Counters) {
	s := c.V.ScanlineID(k, j)
	runs := int(c.V.RunOff[s+1] - c.V.RunOff[s])
	cnt.Runs += int64(runs)
	cnt.Cycles += int64(runs) * CyclesPerRun
	if runs > 0 {
		c.Tracer.Read(c.Arrays.RunLens, int(c.V.RunOff[s]), runs)
	}
	voxBase := int(c.V.VoxOff[s])
	_, vox := c.V.Scanline(k, j)
	for _, sp := range spans {
		copy(row[sp.Start:sp.End], vox[sp.VoxStart:sp.VoxStart+sp.End-sp.Start])
		n := sp.End - sp.Start
		cnt.VoxelsRead += int64(n)
		cnt.Cycles += int64(n) * CyclesPerVoxelCopy
		c.Tracer.Read(c.Arrays.Vox, voxBase+sp.VoxStart, n)
	}
}

// zeroGaps zeroes the scratch-row positions inside the merged spans' voxel
// footprint that the line's own spans did not fill, so the pixel kernel can
// read the rows unconditionally. Both span lists are sorted and disjoint,
// so one monotone sweep suffices; the work is bounded by the footprint
// length and is typically a few voxels around each span edge.
func (c *Ctx) zeroGaps(spans []rle.Span, row []classify.Voxel, off int) {
	si := 0
	for _, ps := range c.merged {
		// Pixels [Lo, Hi) read voxels [Lo-off, Hi-off+1), clamped to the row.
		a := ps.Lo - off
		b := ps.Hi - off + 1
		if a < 0 {
			a = 0
		}
		if b > len(row) {
			b = len(row)
		}
		for a < b {
			for si < len(spans) && spans[si].End <= a {
				si++
			}
			if si < len(spans) && spans[si].Start <= a {
				a = spans[si].End // already filled through the span
				continue
			}
			e := b
			if si < len(spans) && spans[si].Start < b {
				e = spans[si].Start
			}
			clear(row[a:e])
			a = e
		}
	}
}

// mergePixelSpans converts the voxel spans of both contributing lines into
// a coalesced, sorted list of pixel intervals on the intermediate scanline.
// A voxel span [s, e) is sampled by pixels [s+off-1, e+off) when wx > 0 and
// [s+off, e+off) when wx == 0.
func (c *Ctx) mergePixelSpans(off int, fractional bool) {
	c.merged = c.merged[:0]
	lead := 0
	if fractional {
		lead = 1
	}
	i0, i1 := 0, 0
	W := c.M.W
	for i0 < len(c.spans0) || i1 < len(c.spans1) {
		var sp rle.Span
		if i1 >= len(c.spans1) || (i0 < len(c.spans0) && c.spans0[i0].Start <= c.spans1[i1].Start) {
			sp = c.spans0[i0]
			i0++
		} else {
			sp = c.spans1[i1]
			i1++
		}
		lo := sp.Start + off - lead
		hi := sp.End + off
		if lo < 0 {
			lo = 0
		}
		if hi > W {
			hi = W
		}
		if lo >= hi {
			continue
		}
		if n := len(c.merged); n > 0 && lo <= c.merged[n-1].Hi {
			if hi > c.merged[n-1].Hi {
				c.merged[n-1].Hi = hi
			}
		} else {
			c.merged = append(c.merged, pixSpan{lo, hi})
		}
	}
}

// compositePixel resamples the four contributing voxels at pixel u and
// blends the sample into the intermediate image, front to back. It returns
// whether the pixel just saturated (so the traced path can report the
// skip-link write). The accumulation is straight-line arithmetic over the
// u8f unpack table; zero voxels and zero weights contribute exact float
// zeros, so no per-corner branches are needed and the result stays
// bit-identical to the guarded reference formulation.
func (c *Ctx) compositePixel(vRow, u, off int, w00, w10, w01, w11 float32, cnt *Counters) bool {
	i0 := u - off
	var v00, v10, v01, v11 classify.Voxel
	if uint(i0) < uint(len(c.row0)) {
		v00 = c.row0[i0]
		v01 = c.row1[i0]
	}
	if i1 := i0 + 1; uint(i1) < uint(len(c.row0)) {
		v10 = c.row0[i1]
		v11 = c.row1[i1]
	}
	// Premultiplied resampling: alpha and alpha-weighted color.
	aa := w00*u8f255[v00>>24] + w10*u8f255[v10>>24] +
		w01*u8f255[v01>>24] + w11*u8f255[v11>>24]
	if aa < 1.0/512 {
		cnt.EmptyPixels++
		cnt.Cycles += CyclesPerEmptyPixel
		return false
	}
	// View-dependent opacity correction (identity when disabled). The
	// premultiplied colors scale by the same factor so hue is preserved.
	scale := float32(1)
	if c.alphaLUT != nil {
		corrected := c.correctAlpha(aa)
		scale = corrected / aa
		aa = corrected
	}
	a0 := w00 * u8f[v00>>24] * (1.0 / 255)
	a1 := w10 * u8f[v10>>24] * (1.0 / 255)
	a2 := w01 * u8f[v01>>24] * (1.0 / 255)
	a3 := w11 * u8f[v11>>24] * (1.0 / 255)
	ar := a0*u8f[(v00>>16)&0xff] + a1*u8f[(v10>>16)&0xff] + a2*u8f[(v01>>16)&0xff] + a3*u8f[(v11>>16)&0xff]
	ag := a0*u8f[(v00>>8)&0xff] + a1*u8f[(v10>>8)&0xff] + a2*u8f[(v01>>8)&0xff] + a3*u8f[(v11>>8)&0xff]
	ab := a0*u8f[v00&0xff] + a1*u8f[v10&0xff] + a2*u8f[v01&0xff] + a3*u8f[v11&0xff]

	M := c.M
	p := 4 * (vRow*M.W + u)
	t := scale * (1 - M.Pix[p+3])
	M.Pix[p] += t * ar * (1.0 / 255)
	M.Pix[p+1] += t * ag * (1.0 / 255)
	M.Pix[p+2] += t * ab * (1.0 / 255)
	M.Pix[p+3] += (1 - M.Pix[p+3]) * aa
	cnt.Samples++
	cnt.Cycles += CyclesPerSample
	if M.Pix[p+3] >= img.OpacityThreshold {
		M.MarkOpaque(u, vRow)
		return true
	}
	return false
}

// compositeSegment is the untraced hot loop: it composites the live pixels
// of [u, hi) on row vRow until the segment ends or a saturated pixel is
// reached, and returns the stopping pixel. It performs exactly the
// arithmetic of compositePixel per pixel — same unpack tables, same
// grouping, same order — with the row, image and counter state hoisted out
// of the loop, so images and counter totals stay bit-identical to the
// traced path.
func (c *Ctx) compositeSegment(vRow, u, hi, off int, w00, w10, w01, w11 float32, cnt *Counters) int {
	M := c.M
	rowBase := vRow * M.W
	links := M.Links[rowBase : rowBase+M.W]
	pix := M.Pix[4*rowBase : 4*(rowBase+M.W)]
	row0, row1 := c.row0, c.row1
	var samples, empty int64
	for u < hi && links[u] == 0 {
		i0 := u - off
		var v00, v10, v01, v11 classify.Voxel
		if uint(i0) < uint(len(row0)) {
			v00 = row0[i0]
			v01 = row1[i0]
		}
		if i1 := i0 + 1; uint(i1) < uint(len(row0)) {
			v10 = row0[i1]
			v11 = row1[i1]
		}
		aa := w00*u8f255[v00>>24] + w10*u8f255[v10>>24] +
			w01*u8f255[v01>>24] + w11*u8f255[v11>>24]
		if aa < 1.0/512 {
			empty++
			u++
			continue
		}
		scale := float32(1)
		if c.alphaLUT != nil {
			corrected := c.correctAlpha(aa)
			scale = corrected / aa
			aa = corrected
		}
		a0 := w00 * u8f[v00>>24] * (1.0 / 255)
		a1 := w10 * u8f[v10>>24] * (1.0 / 255)
		a2 := w01 * u8f[v01>>24] * (1.0 / 255)
		a3 := w11 * u8f[v11>>24] * (1.0 / 255)
		ar := a0*u8f[(v00>>16)&0xff] + a1*u8f[(v10>>16)&0xff] + a2*u8f[(v01>>16)&0xff] + a3*u8f[(v11>>16)&0xff]
		ag := a0*u8f[(v00>>8)&0xff] + a1*u8f[(v10>>8)&0xff] + a2*u8f[(v01>>8)&0xff] + a3*u8f[(v11>>8)&0xff]
		ab := a0*u8f[v00&0xff] + a1*u8f[v10&0xff] + a2*u8f[v01&0xff] + a3*u8f[v11&0xff]

		p := 4 * u
		t := scale * (1 - pix[p+3])
		pix[p] += t * ar * (1.0 / 255)
		pix[p+1] += t * ag * (1.0 / 255)
		pix[p+2] += t * ab * (1.0 / 255)
		pix[p+3] += (1 - pix[p+3]) * aa
		samples++
		if pix[p+3] >= img.OpacityThreshold {
			M.MarkOpaque(u, vRow)
		}
		u++
	}
	cnt.Samples += samples
	cnt.EmptyPixels += empty
	cnt.Cycles += samples*CyclesPerSample + empty*CyclesPerEmptyPixel
	return u
}

func alphaOf(v classify.Voxel) float32 {
	return u8f[v>>24] * (1.0 / 255)
}
