// Package composite implements the compositing phase of the shear-warp
// algorithm: streaming through the run-length-encoded volume in scanline
// order and accumulating the sheared slices into the intermediate image,
// front to back, with early ray termination via the image's opaque-pixel
// skip links.
//
// The unit of work is one intermediate-image scanline — the task
// granularity of both parallel algorithms in the paper — exposed as
// Ctx.Scanline. The kernel does the real arithmetic and, when a Tracer is
// attached, reports the shared-array ranges it touches so the memory-system
// simulators can replay its reference stream. Work cycles are counted with
// an explicit cost model (the Pixie basic-block-counting analog).
package composite

import (
	"math"

	"shearwarp/internal/classify"
	"shearwarp/internal/img"
	"shearwarp/internal/rle"
	"shearwarp/internal/trace"
	"shearwarp/internal/xform"
)

// Cost model: cycle counts per primitive operation, playing the role of the
// paper's basic-block instruction counts on a 1-CPI processor. The ratios
// matter more than absolute values: compositing a sample is an order of
// magnitude more work than stepping over a run header, matching Figure 2's
// shear-warp breakdown where compositing dominates looping.
const (
	CyclesPerSample     = 22 // bilinear gather of 4 voxels + composite + test
	CyclesPerEmptyPixel = 3  // pixel visited but sample transparent
	CyclesPerSkip       = 2  // following one opaque-run link
	CyclesPerRun        = 4  // decoding one run header
	CyclesPerVoxelCopy  = 2  // streaming one packed voxel out of the RLE
	CyclesPerSliceSetup = 14 // per-slice shear setup for a scanline
	CyclesPerLineSetup  = 30 // per-scanline task setup
)

// Counters aggregates kernel work. Cycles is the modeled busy time; the
// remaining fields break it down for the Figure 2-style analyses.
type Counters struct {
	Cycles      int64 // total modeled work cycles
	Samples     int64 // composited (resampled + blended) samples
	EmptyPixels int64 // pixels visited whose resampled alpha was ~0
	Skips       int64 // opaque-run link traversals
	Runs        int64 // run headers decoded
	VoxelsRead  int64 // packed voxels streamed from the RLE
	Slices      int64 // slice visits across scanline tasks
	Scanlines   int64 // scanline tasks executed
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Cycles += other.Cycles
	c.Samples += other.Samples
	c.EmptyPixels += other.EmptyPixels
	c.Skips += other.Skips
	c.Runs += other.Runs
	c.VoxelsRead += other.VoxelsRead
	c.Slices += other.Slices
	c.Scanlines += other.Scanlines
}

// LoopingCycles returns the portion of Cycles spent on control overhead and
// coherence-structure traversal rather than resampling/compositing — the
// paper's "looping time" (Figure 2).
func (c *Counters) LoopingCycles() int64 {
	return c.Cycles - c.Samples*CyclesPerSample
}

// Arrays holds the trace handles of the shared arrays the kernel touches.
// A zero value (invalid handles) disables tracing of that array.
type Arrays struct {
	RunLens  trace.Array // rle.Volume.RunLens, elem 2 bytes
	Vox      trace.Array // rle.Volume.Vox, elem 4 bytes
	IntPix   trace.Array // img.Intermediate.Pix, elem 16 bytes per pixel
	IntLinks trace.Array // img.Intermediate.Links, elem 4 bytes
}

// RegisterArrays lays out the kernel's shared arrays in an address space.
func RegisterArrays(s *trace.AddrSpace, v *rle.Volume, m *img.Intermediate) Arrays {
	return Arrays{
		RunLens:  s.Register("rle.RunLens", 2, len(v.RunLens)),
		Vox:      s.Register("rle.Vox", 4, len(v.Vox)),
		IntPix:   s.Register("int.Pix", 16, m.W*m.H),
		IntLinks: s.Register("int.Links", 4, m.W*m.H),
	}
}

// Ctx carries everything one processor needs to composite scanlines. Each
// simulated or native processor owns its own Ctx (the scratch buffers are
// private); F, V and M are shared.
type Ctx struct {
	F *xform.Factorization
	V *rle.Volume
	M *img.Intermediate

	Tracer trace.Tracer // nil in native mode
	Arrays Arrays

	// alphaLUT, when non-nil, applies Lacroute's view-dependent opacity
	// correction: stored opacities assume unit sample spacing, but the
	// shear samples once per slice, spacing the samples
	// d = sqrt(1 + Si^2 + Sj^2) apart along the ray, so the corrected
	// opacity is 1 - (1-a)^d. Enable with EnableOpacityCorrection.
	alphaLUT []float32

	// Scratch, private per processor.
	row0, row1     []classify.Voxel
	spans0, spans1 []rle.Span
	merged         []pixSpan
}

// lutSize is the resolution of the opacity-correction table; resampled
// alphas index it linearly.
const lutSize = 1024

// EnableOpacityCorrection builds the per-frame correction table from the
// factorization's shear coefficients. Every processor rendering the same
// frame must make the same choice, or images diverge.
func (c *Ctx) EnableOpacityCorrection() {
	d := math.Sqrt(1 + c.F.Si*c.F.Si + c.F.Sj*c.F.Sj)
	c.alphaLUT = make([]float32, lutSize+1)
	for i := 0; i <= lutSize; i++ {
		a := float64(i) / lutSize
		c.alphaLUT[i] = float32(1 - math.Pow(1-a, d))
	}
}

// correctAlpha maps a resampled opacity through the correction table (a
// no-op factor of 1 when correction is disabled).
func (c *Ctx) correctAlpha(aa float32) float32 {
	if c.alphaLUT == nil {
		return aa
	}
	idx := int(aa * lutSize)
	if idx < 0 {
		idx = 0
	}
	if idx >= lutSize {
		idx = lutSize
	}
	return c.alphaLUT[idx]
}

// pixSpan is a pixel-index interval [Lo, Hi) of the intermediate scanline
// that can receive non-transparent samples from the current slice.
type pixSpan struct{ Lo, Hi int }

// NewCtx builds a per-processor compositing context.
func NewCtx(f *xform.Factorization, v *rle.Volume, m *img.Intermediate) *Ctx {
	return &Ctx{
		F: f, V: v, M: m,
		row0: make([]classify.Voxel, v.Ni),
		row1: make([]classify.Voxel, v.Ni),
	}
}

// Scanline composites intermediate-image row vRow across all slices, front
// to back, and returns the work cycles it spent. The returned cycles are
// also accumulated into cnt along with the detailed counters.
func (c *Ctx) Scanline(vRow int, cnt *Counters) int64 {
	f, V, M := c.F, c.V, c.M
	start := cnt.Cycles
	cnt.Scanlines++
	cnt.Cycles += CyclesPerLineSetup

	for idx := 0; idx < f.Nk; idx++ {
		// Row saturated: early ray termination ends the whole task.
		if M.Skip(0, vRow) >= M.W {
			if c.Tracer != nil {
				c.Tracer.Read(c.Arrays.IntLinks, M.PixelIndex(0, vRow), 1)
			}
			cnt.Skips++
			cnt.Cycles += CyclesPerSkip
			break
		}
		k := f.KFront + idx*f.KStep
		cnt.Slices++
		cnt.Cycles += CyclesPerSliceSetup

		tu, tv := f.SliceShift(k)
		y := float64(vRow) - tv
		j0 := int(math.Floor(y))
		wy := y - float64(j0)
		if j0 < -1 || j0 >= f.Nj {
			continue // slice does not reach this scanline
		}
		have0 := j0 >= 0 && wy < 1
		have1 := j0+1 < f.Nj && wy > 0

		// Constant resampling weights along the row (see Factorization).
		tuInt := int(math.Floor(tu))
		tuFrac := tu - float64(tuInt)
		off := tuInt // pixel u gathers voxels i0 = u-off(-1) and i0+1
		wx := 0.0
		if tuFrac > 0 {
			off = tuInt + 1
			wx = 1 - tuFrac
		}
		w00 := float32((1 - wx) * (1 - wy))
		w10 := float32(wx * (1 - wy))
		w01 := float32((1 - wx) * wy)
		w11 := float32(wx * wy)

		// Decode the contributing spans of up to two volume scanlines into
		// private scratch rows (zero elsewhere), and collect the union of
		// pixel intervals they can affect.
		c.spans0 = c.spans0[:0]
		c.spans1 = c.spans1[:0]
		if have0 {
			c.spans0 = V.AppendSpans(k, j0, c.spans0)
			c.decodeSpans(k, j0, c.spans0, c.row0, cnt)
		}
		if have1 {
			c.spans1 = V.AppendSpans(k, j0+1, c.spans1)
			c.decodeSpans(k, j0+1, c.spans1, c.row1, cnt)
		}
		if len(c.spans0)+len(c.spans1) == 0 {
			continue
		}
		c.mergePixelSpans(off, wx > 0)

		c.compositeSpans(vRow, off, w00, w10, w01, w11, have0, have1, cnt)

		// Restore the scratch rows to all-zero for the next slice.
		if have0 {
			clearSpans(c.row0, c.spans0)
		}
		if have1 {
			clearSpans(c.row1, c.spans1)
		}
	}
	return cnt.Cycles - start
}

// decodeSpans streams the non-transparent voxels of scanline (k, j) into
// the dense scratch row and charges the run-traversal costs.
func (c *Ctx) decodeSpans(k, j int, spans []rle.Span, row []classify.Voxel, cnt *Counters) {
	s := c.V.ScanlineID(k, j)
	runs := int(c.V.RunOff[s+1] - c.V.RunOff[s])
	cnt.Runs += int64(runs)
	cnt.Cycles += int64(runs) * CyclesPerRun
	if c.Tracer != nil && runs > 0 {
		c.Tracer.Read(c.Arrays.RunLens, int(c.V.RunOff[s]), runs)
	}
	voxBase := int(c.V.VoxOff[s])
	_, vox := c.V.Scanline(k, j)
	for _, sp := range spans {
		copy(row[sp.Start:sp.End], vox[sp.VoxStart:sp.VoxStart+sp.End-sp.Start])
		n := sp.End - sp.Start
		cnt.VoxelsRead += int64(n)
		cnt.Cycles += int64(n) * CyclesPerVoxelCopy
		if c.Tracer != nil {
			c.Tracer.Read(c.Arrays.Vox, voxBase+sp.VoxStart, n)
		}
	}
}

// clearSpans re-zeroes the span regions of a scratch row.
func clearSpans(row []classify.Voxel, spans []rle.Span) {
	for _, sp := range spans {
		clear(row[sp.Start:sp.End])
	}
}

// mergePixelSpans converts the voxel spans of both contributing lines into
// a coalesced, sorted list of pixel intervals on the intermediate scanline.
// A voxel span [s, e) is sampled by pixels [s+off-1, e+off) when wx > 0 and
// [s+off, e+off) when wx == 0.
func (c *Ctx) mergePixelSpans(off int, fractional bool) {
	c.merged = c.merged[:0]
	lead := 0
	if fractional {
		lead = 1
	}
	i0, i1 := 0, 0
	W := c.M.W
	for i0 < len(c.spans0) || i1 < len(c.spans1) {
		var sp rle.Span
		if i1 >= len(c.spans1) || (i0 < len(c.spans0) && c.spans0[i0].Start <= c.spans1[i1].Start) {
			sp = c.spans0[i0]
			i0++
		} else {
			sp = c.spans1[i1]
			i1++
		}
		lo := sp.Start + off - lead
		hi := sp.End + off
		if lo < 0 {
			lo = 0
		}
		if hi > W {
			hi = W
		}
		if lo >= hi {
			continue
		}
		if n := len(c.merged); n > 0 && lo <= c.merged[n-1].Hi {
			if hi > c.merged[n-1].Hi {
				c.merged[n-1].Hi = hi
			}
		} else {
			c.merged = append(c.merged, pixSpan{lo, hi})
		}
	}
}

// compositeSpans walks the merged pixel intervals of the current slice,
// skipping saturated pixels via the intermediate image's run links, and
// composites one resampled sample per live pixel.
func (c *Ctx) compositeSpans(vRow, off int, w00, w10, w01, w11 float32, have0, have1 bool, cnt *Counters) {
	M := c.M
	rowBase := vRow * M.W
	for _, ps := range c.merged {
		u := ps.Lo
		for u < ps.Hi {
			// Early ray termination: hop over saturated pixels.
			if M.Links[rowBase+u] > 0 {
				if c.Tracer != nil {
					c.Tracer.Read(c.Arrays.IntLinks, rowBase+u, 1)
				}
				u = M.Skip(u, vRow)
				cnt.Skips++
				cnt.Cycles += CyclesPerSkip
				continue
			}
			segStart := u
			// Composite a contiguous live segment.
			for u < ps.Hi && M.Links[rowBase+u] == 0 {
				c.compositePixel(vRow, u, off, w00, w10, w01, w11, cnt)
				u++
			}
			if c.Tracer != nil && u > segStart {
				c.Tracer.Read(c.Arrays.IntPix, rowBase+segStart, u-segStart)
				c.Tracer.Write(c.Arrays.IntPix, rowBase+segStart, u-segStart)
				c.Tracer.Read(c.Arrays.IntLinks, rowBase+segStart, u-segStart)
			}
		}
	}
}

// compositePixel resamples the four contributing voxels at pixel u and
// blends the sample into the intermediate image, front to back.
func (c *Ctx) compositePixel(vRow, u, off int, w00, w10, w01, w11 float32, cnt *Counters) {
	i0 := u - off
	var v00, v10, v01, v11 classify.Voxel
	if i0 >= 0 && i0 < c.V.Ni {
		v00 = c.row0[i0]
		v01 = c.row1[i0]
	}
	if i1 := i0 + 1; i1 >= 0 && i1 < c.V.Ni {
		v10 = c.row0[i1]
		v11 = c.row1[i1]
	}
	// Premultiplied resampling: alpha and alpha-weighted color.
	aa := w00*alphaOf(v00) + w10*alphaOf(v10) + w01*alphaOf(v01) + w11*alphaOf(v11)
	if aa < 1.0/512 {
		cnt.EmptyPixels++
		cnt.Cycles += CyclesPerEmptyPixel
		return
	}
	// View-dependent opacity correction (identity when disabled). The
	// premultiplied colors scale by the same factor so hue is preserved.
	scale := float32(1)
	if c.alphaLUT != nil {
		corrected := c.correctAlpha(aa)
		scale = corrected / aa
		aa = corrected
	}
	var ar, ag, ab float32
	accum := func(w float32, v classify.Voxel) {
		if v == 0 || w == 0 {
			return
		}
		a := w * float32(v>>24) * (1.0 / 255)
		ar += a * float32((v>>16)&0xff)
		ag += a * float32((v>>8)&0xff)
		ab += a * float32(v&0xff)
	}
	accum(w00, v00)
	accum(w10, v10)
	accum(w01, v01)
	accum(w11, v11)

	M := c.M
	p := 4 * (vRow*M.W + u)
	t := scale * (1 - M.Pix[p+3])
	M.Pix[p] += t * ar * (1.0 / 255)
	M.Pix[p+1] += t * ag * (1.0 / 255)
	M.Pix[p+2] += t * ab * (1.0 / 255)
	M.Pix[p+3] += (1 - M.Pix[p+3]) * aa
	cnt.Samples++
	cnt.Cycles += CyclesPerSample
	if M.Pix[p+3] >= img.OpacityThreshold {
		M.MarkOpaque(u, vRow)
		if c.Tracer != nil {
			c.Tracer.Write(c.Arrays.IntLinks, vRow*M.W+u, 1)
		}
	}
}

func alphaOf(v classify.Voxel) float32 {
	return float32(v>>24) * (1.0 / 255)
}
