package render

import (
	"math"
	"testing"

	"shearwarp/internal/vol"
	"shearwarp/internal/xform"
)

func TestSerialRenderProducesImage(t *testing.T) {
	r := New(vol.MRIBrain(24), Options{})
	out, st := r.RenderSerial(0.4, 0.25)
	if out.NonBlackCount() == 0 {
		t.Fatal("render produced an all-black image")
	}
	if st.Composite.Cycles == 0 || st.Warp.Cycles == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.TotalCycles() != st.Composite.Cycles+st.Warp.Cycles {
		t.Fatal("TotalCycles mismatch")
	}
}

func TestEncodingCachedPerAxis(t *testing.T) {
	r := New(vol.MRIBrain(16), Options{})
	a := r.Encoding(xform.AxisZ)
	b := r.Encoding(xform.AxisZ)
	if a != b {
		t.Fatal("axis encoding not cached")
	}
	c := r.Encoding(xform.AxisX)
	if c == nil || c == a {
		t.Fatal("axis x encoding wrong")
	}
}

func TestSetupPicksMatchingEncoding(t *testing.T) {
	r := New(vol.MRIBrain(16), Options{})
	fr := r.Setup(math.Pi/2, 0) // principal axis x
	if fr.F.Axis != xform.AxisX {
		t.Fatalf("axis = %v, want x", fr.F.Axis)
	}
	if fr.RV.Axis != xform.AxisX {
		t.Fatal("frame encoding axis does not match factorization")
	}
	if fr.M.W != fr.F.IntW || fr.Out.W != fr.F.FinalW {
		t.Fatal("image sizes do not match factorization")
	}
}

func TestRenderDeterministic(t *testing.T) {
	r := New(vol.MRIBrain(20), Options{})
	a, _ := r.RenderSerial(0.7, -0.3)
	b, _ := r.RenderSerial(0.7, -0.3)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("serial render is not deterministic")
		}
	}
}

func TestRotationViews(t *testing.T) {
	views := Rotation(4, 0.1, 0.2, 15)
	if len(views) != 4 {
		t.Fatalf("views = %d", len(views))
	}
	step := views[1][0] - views[0][0]
	want := 15 * math.Pi / 180
	if math.Abs(step-want) > 1e-12 {
		t.Fatalf("yaw step = %g, want %g", step, want)
	}
	for _, v := range views {
		if v[1] != 0.2 {
			t.Fatal("pitch must stay constant")
		}
	}
}

func TestDifferentViewsDiffer(t *testing.T) {
	r := New(vol.MRIBrain(20), Options{})
	a, _ := r.RenderSerial(0.0, 0.0)
	b, _ := r.RenderSerial(0.5, 0.0)
	if a.W == b.W && a.H == b.H {
		same := true
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("rotating the view did not change the image")
		}
	}
}

func TestCorrectionDisabledBitIdentical(t *testing.T) {
	// The correction-off path must be exactly the pre-feature arithmetic.
	r1 := New(vol.MRIBrain(20), Options{})
	r2 := New(vol.MRIBrain(20), Options{OpacityCorrection: false})
	a, _ := r1.RenderSerial(0.5, 0.3)
	b, _ := r2.RenderSerial(0.5, 0.3)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("disabled correction changed the image")
		}
	}
}

func TestCorrectionChangesShearedImage(t *testing.T) {
	plain := New(vol.MRIBrain(20), Options{})
	corr := New(vol.MRIBrain(20), Options{OpacityCorrection: true})
	a, _ := plain.RenderSerial(0.6, 0.4)
	b, _ := corr.RenderSerial(0.6, 0.4)
	same := true
	var la, lb int64
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			same = false
		}
		la += int64(a.Pix[i])
		lb += int64(b.Pix[i])
	}
	if same {
		t.Fatal("correction had no effect on a sheared view")
	}
	if lb < la {
		t.Fatalf("corrected image dimmer (%d < %d); correction adds opacity", lb, la)
	}
}

func TestCorrectionConsistentAcrossParallelism(t *testing.T) {
	// All algorithms share the kernel, so correction-enabled images stay
	// bit-identical across serial and parallel renders. Exercised through
	// the frame constructor both paths use.
	r := New(vol.MRIBrain(20), Options{OpacityCorrection: true})
	a, _ := r.RenderSerial(0.5, 0.3)
	b, _ := r.RenderSerial(0.5, 0.3)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("corrected render not deterministic")
		}
	}
}
