package render

import (
	"fmt"
	"runtime/debug"
)

// FrameError reports a frame that failed mid-render: a panic in a worker
// (or in the setup/orchestration path) was recovered and converted, its
// peers were cancelled through the frame's abort flag, and the renderer
// was left in a state where the next frame renders byte-identically. The
// render service maps it to a 500 and keeps serving.
type FrameError struct {
	Worker int    // panicking worker id, or -1 for the setup path
	Phase  string // phase at the panic site ("setup", "clear", "composite", "steal", "warp", ...)
	Band   int    // band being processed, or -1 when not applicable
	Value  any    // the recovered panic value
	Stack  []byte // goroutine stack captured at recovery
}

// NewFrameError converts a recovered panic value into a FrameError,
// capturing the recovering goroutine's stack. Call it from the deferred
// recover itself so the stack still contains the panic site.
func NewFrameError(worker int, phase string, band int, value any) *FrameError {
	return &FrameError{Worker: worker, Phase: phase, Band: band, Value: value, Stack: debug.Stack()}
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("render: frame failed in phase %q (worker %d, band %d): %v",
		e.Phase, e.Worker, e.Band, e.Value)
}

// Unwrap exposes an error panic value to errors.Is/As, so callers can see
// through to injected faults or cache build failures.
func (e *FrameError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}
