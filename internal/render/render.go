// Package render ties the shear-warp pipeline together: classification,
// per-axis run-length encodings (cached, since they are view-independent),
// factorization, compositing and warping. It provides the serial renderer
// — the baseline all parallel algorithms must match bit-for-bit — and the
// per-frame setup shared by the parallel implementations.
package render

import (
	"context"
	rtrace "runtime/trace"
	"time"

	"shearwarp/internal/classify"
	"shearwarp/internal/composite"
	"shearwarp/internal/cpudispatch"
	"shearwarp/internal/faultinject"
	"shearwarp/internal/img"
	"shearwarp/internal/perf"
	"shearwarp/internal/rendermode"
	"shearwarp/internal/rle"
	"shearwarp/internal/telemetry"
	"shearwarp/internal/vol"
	"shearwarp/internal/warp"
	"shearwarp/internal/xform"
)

// Options configures a Renderer.
type Options struct {
	Transfer   classify.TransferFunc // nil = MRI transfer
	Light      classify.Light        // zero = default light
	MinOpacity uint8                 // 0 = default threshold
	// OpacityCorrection enables Lacroute's view-dependent correction of
	// stored opacities for the shear's per-slice sample spacing.
	OpacityCorrection bool
	// PreprocProcs parallelizes classification and run-length encoding
	// (the renderer's view-independent preprocessing) with this many
	// goroutines; 0 or 1 keeps them serial. Outputs are bit-identical.
	PreprocProcs int
	// Kernel selects the pixel-kernel tier of the untraced compositing
	// and warp fast paths. It is resolved once, here at construction
	// (KernelAuto consults SHEARWARP_KERNEL and falls back to the exact
	// scalar tier), and every frame of this renderer then uses the
	// resolved tier.
	Kernel cpudispatch.Kernel
	// Mode selects the render mode every frame of this renderer runs
	// with: composite (the zero value), MIP, or isosurface. For the
	// isosurface mode the caller supplies the thresholding transfer
	// function (classify.IsoTransfer) in Transfer — classification is
	// where that mode lives; Mode itself only steers the per-scanline
	// compositing kernel.
	Mode rendermode.Mode
}

// Renderer owns a classified volume and its lazily-built per-axis RLE
// encodings. Like every renderer in this repository it is single-frame-
// at-a-time: the classified volume and encodings are immutable and may be
// shared (see NewShared), but one Renderer must not run two frames
// concurrently.
type Renderer struct {
	Vol               *vol.Volume
	Classified        *classify.Classified
	OpacityCorrection bool
	// Kernel is the resolved pixel-kernel tier every frame runs with
	// (never KernelAuto — construction resolves it).
	Kernel cpudispatch.Kernel
	// Mode is the render mode every frame runs with (see Options.Mode).
	Mode         rendermode.Mode
	preprocProcs int
	enc          [3]*rle.Volume
	// warpScratch backs the packed warp tier of the serial render path;
	// a Renderer runs one frame at a time, so one scratch suffices.
	warpScratch warp.Scratch
	// encodeFn, when set, supplies per-axis encodings from an external
	// source (the render service's LRU cache) instead of encoding
	// privately. The returned encodings must be immutable and equivalent
	// to rle.Encode over Classified.
	encodeFn func(xform.Axis) *rle.Volume
	// Faults, when non-nil, injects deterministic faults into the serial
	// render path (internal/faultinject). Nil-checked everywhere.
	Faults *faultinject.Injector
	// Spans, when non-nil, receives timestamped spans for the serial
	// render path's phases (setup, composite, warp) on worker lane 0.
	// Nil-checked at every site; swap only between frames.
	Spans *telemetry.FrameSpans
}

// New classifies the volume and returns a renderer.
func New(v *vol.Volume, opt Options) *Renderer {
	copt := classify.Options{
		Transfer: opt.Transfer, Light: opt.Light, MinOpacity: opt.MinOpacity,
	}
	return &Renderer{
		Vol:               v,
		OpacityCorrection: opt.OpacityCorrection,
		Kernel:            cpudispatch.Resolve(opt.Kernel),
		Mode:              opt.Mode,
		preprocProcs:      opt.PreprocProcs,
		Classified:        classify.ClassifyParallel(v, copt, opt.PreprocProcs),
	}
}

// NewShared builds a renderer around preprocessing owned by someone else:
// an already-classified volume and an encoding source consulted once per
// principal axis. Classification and encoding dominate setup cost and are
// view-independent, so a render service shares them across a whole pool
// of renderers; the shared products are immutable, which keeps the
// sharing race-free while each pooled renderer runs frames independently.
// opt.Transfer/Light/MinOpacity are ignored — they are already baked into
// the classified volume.
func NewShared(v *vol.Volume, c *classify.Classified, encode func(xform.Axis) *rle.Volume, opt Options) *Renderer {
	return &Renderer{
		Vol:               v,
		Classified:        c,
		OpacityCorrection: opt.OpacityCorrection,
		Kernel:            cpudispatch.Resolve(opt.Kernel),
		Mode:              opt.Mode,
		preprocProcs:      opt.PreprocProcs,
		encodeFn:          encode,
	}
}

// Encoding returns the RLE encoding for a principal axis, building it on
// first use (or fetching it from the shared source for NewShared
// renderers).
func (r *Renderer) Encoding(axis xform.Axis) *rle.Volume {
	if r.enc[axis] == nil {
		if r.encodeFn != nil {
			r.enc[axis] = r.encodeFn(axis)
		} else {
			r.enc[axis] = rle.EncodeParallel(r.Classified, axis, r.preprocProcs)
		}
	}
	return r.enc[axis]
}

// Frame holds the per-frame state shared by serial and parallel renderers.
type Frame struct {
	F   xform.Factorization
	RV  *rle.Volume
	M   *img.Intermediate
	Out *img.Final
	// CorrectOpacity tells compositing contexts to enable the per-frame
	// opacity-correction table.
	CorrectOpacity bool
	// Kernel is the resolved pixel-kernel tier the frame's untraced
	// compositing and warp contexts run with.
	Kernel cpudispatch.Kernel
	// Mode is the render mode the frame's compositing contexts run with.
	Mode rendermode.Mode
}

// NewCompositeCtx builds a compositing context for this frame, applying
// the frame's opacity-correction setting; all renderers (serial, parallel,
// simulated) must create their contexts through it so images stay
// bit-identical across algorithms.
func (fr *Frame) NewCompositeCtx() *composite.Ctx {
	cc := composite.NewCtx(&fr.F, fr.RV, fr.M)
	cc.Kernel = fr.Kernel
	cc.Mode = fr.Mode
	if fr.CorrectOpacity {
		cc.EnableOpacityCorrection()
	}
	return cc
}

// BindCompositeCtx rebinds a pooled compositing context to this frame, or
// builds a fresh one when cc is nil; like NewCompositeCtx it applies the
// frame's opacity-correction setting so images stay bit-identical.
func (fr *Frame) BindCompositeCtx(cc *composite.Ctx) *composite.Ctx {
	if cc == nil {
		return fr.NewCompositeCtx()
	}
	cc.Bind(&fr.F, fr.RV, fr.M)
	cc.Kernel = fr.Kernel
	cc.Mode = fr.Mode
	if fr.CorrectOpacity {
		cc.EnableOpacityCorrection()
	}
	return cc
}

// NewWarpCtx builds a warp context for this frame with the frame's kernel
// tier. The optional scratch (required for the packed tier to stay
// allocation-free) is reset here: NewWarpCtx marks a frame boundary, and
// rows cached from an earlier frame must not survive into this one.
func (fr *Frame) NewWarpCtx(s *warp.Scratch) warp.Ctx {
	if s != nil {
		s.Reset()
	}
	return warp.Ctx{F: &fr.F, M: fr.M, Out: fr.Out, Kernel: fr.Kernel, S: s}
}

// Setup factorizes the view and allocates the frame's images.
func (r *Renderer) Setup(yaw, pitch float64) *Frame {
	view := xform.ViewMatrix(r.Vol.Nx, r.Vol.Ny, r.Vol.Nz, yaw, pitch)
	f := xform.Factorize(r.Vol.Nx, r.Vol.Ny, r.Vol.Nz, view)
	return &Frame{
		F:              f,
		RV:             r.Encoding(f.Axis),
		M:              img.NewIntermediate(f.IntW, f.IntH),
		Out:            img.NewFinal(f.FinalW, f.FinalH),
		CorrectOpacity: r.OpacityCorrection,
		Kernel:         r.Kernel,
		Mode:           r.Mode,
	}
}

// SetupInto factorizes the view into an existing frame, reusing its images
// when they exist (resized without clearing — the caller owns the clear).
// Unlike Setup, which always allocates fresh zeroed images, this is the
// allocation-free path for renderers that own a persistent Frame; callers
// that hand out the final image must not reuse the frame afterwards.
func (r *Renderer) SetupInto(fr *Frame, yaw, pitch float64) {
	view := xform.ViewMatrix(r.Vol.Nx, r.Vol.Ny, r.Vol.Nz, yaw, pitch)
	fr.F = xform.Factorize(r.Vol.Nx, r.Vol.Ny, r.Vol.Nz, view)
	fr.RV = r.Encoding(fr.F.Axis)
	if fr.M == nil {
		fr.M = img.NewIntermediate(fr.F.IntW, fr.F.IntH)
	} else {
		fr.M.Resize(fr.F.IntW, fr.F.IntH)
	}
	if fr.Out == nil {
		fr.Out = img.NewFinal(fr.F.FinalW, fr.F.FinalH)
	} else {
		fr.Out.Resize(fr.F.FinalW, fr.F.FinalH)
	}
	fr.CorrectOpacity = r.OpacityCorrection
	fr.Kernel = r.Kernel
	fr.Mode = r.Mode
}

// FrameStats reports the modeled work of one rendered frame.
type FrameStats struct {
	Composite composite.Counters
	Warp      warp.Counters
}

// TotalCycles is the modeled serial busy time of the frame.
func (s *FrameStats) TotalCycles() int64 { return s.Composite.Cycles + s.Warp.Cycles }

// RenderSerial renders one frame with the sequential algorithm: composite
// every intermediate scanline top to bottom, then warp the whole final
// image.
func (r *Renderer) RenderSerial(yaw, pitch float64) (*img.Final, FrameStats) {
	return r.RenderSerialPerf(yaw, pitch, nil)
}

// RenderSerialPerf is RenderSerial with an optional perf collector
// recording the compositing and warp phase times as a one-worker
// breakdown. A nil collector adds no clock reads (the same nil-check
// split the parallel renderers use). It re-panics a *FrameError if the
// frame panicked; services use RenderSerialCtx.
func (r *Renderer) RenderSerialPerf(yaw, pitch float64, pc *perf.Collector) (*img.Final, FrameStats) {
	out, st, err := r.RenderSerialCtx(context.Background(), yaw, pitch, pc)
	if err != nil {
		panic(err)
	}
	return out, st
}

// RenderSerialCtx is RenderSerialPerf with cooperative cancellation and
// panic containment: the context is polled once per composited scanline
// (and once before the warp), and a panic anywhere in the frame —
// factorization of a degenerate view, a compositing invariant, an
// injected fault — is recovered into a *FrameError. On error the returned
// image is nil.
func (r *Renderer) RenderSerialCtx(ctx context.Context, yaw, pitch float64, pc *perf.Collector) (out *img.Final, st FrameStats, err error) {
	if err := ctx.Err(); err != nil {
		return nil, FrameStats{}, err
	}
	pc.Reset(1)
	pc.FrameStart()
	defer pc.FrameEnd()

	phase := "setup"
	defer func() {
		if v := recover(); v != nil {
			out, st, err = nil, FrameStats{}, NewFrameError(0, phase, -1, v)
		}
	}()

	fi := r.Faults
	sr := r.Spans
	fi.Visit("setup", 0, -1)
	var tSetup time.Time
	if sr != nil {
		tSetup = time.Now()
	}
	fr := r.Setup(yaw, pitch)
	if sr != nil {
		sr.Record(-1, "setup", telemetry.CatRequest, tSetup, time.Since(tSetup))
	}

	tctx := context.Background()
	var task *rtrace.Task
	if rtrace.IsEnabled() {
		tctx, task = rtrace.NewTask(tctx, "shearwarp.frame")
	}
	defer func() {
		if task != nil {
			task.End()
		}
	}()

	timed := pc != nil || sr != nil
	var tw, t0 time.Time
	if timed {
		tw = time.Now()
		t0 = tw
	}
	phase = "composite"
	cc := fr.NewCompositeCtx()
	reg := rtrace.StartRegion(tctx, "composite")
	for vRow := 0; vRow < fr.M.H; vRow++ {
		if ctx.Err() != nil {
			reg.End()
			return nil, FrameStats{}, ctx.Err()
		}
		if fi != nil {
			fi.Visit("scanline", 0, -1)
		}
		cc.Scanline(vRow, &st.Composite)
	}
	reg.End()
	if timed {
		d := time.Since(t0)
		pc.AddPhase(0, perf.PhaseCompositeOwn, d)
		sr.Record(0, "composite-own", telemetry.CatBusy, t0, d)
		t0 = time.Now()
	}
	if ctx.Err() != nil {
		return nil, FrameStats{}, ctx.Err()
	}
	phase = "warp"
	fi.Visit("warp", 0, -1)
	wc := fr.NewWarpCtx(&r.warpScratch)
	reg = rtrace.StartRegion(tctx, "warp")
	wc.WarpTile(0, 0, fr.Out.W, fr.Out.H, &st.Warp)
	reg.End()
	if timed {
		d := time.Since(t0)
		pc.AddPhase(0, perf.PhaseWarp, d)
		sr.Record(0, "warp", telemetry.CatBusy, t0, d)
	}
	if pc != nil {
		pc.AddPhase(0, perf.PhaseTotal, time.Since(tw))
		pc.AddCount(0, perf.CounterScanlines, st.Composite.Scanlines)
		pc.AddCount(0, perf.CounterEarlyTerm, st.Composite.Skips)
		pc.AddCount(0, perf.CounterWarpSpans, st.Warp.Rows)
	}
	// A cancellation during the warp loses the race against completion;
	// honour the context anyway so a cancelled frame never reports success.
	if err := ctx.Err(); err != nil {
		return nil, FrameStats{}, err
	}
	return fr.Out, st, nil
}

// Rotation returns n (yaw, pitch) viewpoints advancing stepDeg degrees of
// yaw per frame from the given start — the animation pattern the paper
// assumes ("the angle between successive viewpoints is typically small").
func Rotation(n int, startYaw, pitch, stepDeg float64) [][2]float64 {
	const degToRad = 3.14159265358979323846 / 180
	views := make([][2]float64, n)
	for i := range views {
		views[i] = [2]float64{startYaw + float64(i)*stepDeg*degToRad, pitch}
	}
	return views
}
