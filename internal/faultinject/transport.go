package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// TransportSite is the site name the Transport RoundTripper evaluates
// rules at. Per-Nth-request filters use the usual `n=`/`c=` options;
// the worker/band filters are matched as -1/-1 (any), so transport
// rules normally leave them unset.
const TransportSite = "transport"

// Transport is an http.RoundTripper that evaluates an injector's
// transport-kind rules around a base transport — the chaos hook between
// the gateway and its backends. A nil injector forwards every round
// trip untouched.
//
// Rule kinds at the "transport" site:
//
//   - delay: sleep before forwarding the request (a slow backend);
//   - kill: fail with a connection error before the request is sent
//     (a dead backend, or one that died before answering);
//   - status: replace the backend's response with a synthesized error
//     status (503 by default) and a Retry-After: 1 header, the shed
//     shape backends produce under overload;
//   - truncate: forward the request but cut the response body halfway
//     through, surfacing io.ErrUnexpectedEOF to the reader (a backend
//     that died mid-stream).
//
// The visit counter advances once per round trip, so `n=`/`c=` select
// exact request windows regardless of which kinds fire.
func NewTransport(in *Injector, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{in: in, base: base}
}

type transport struct {
	in   *Injector
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	if in == nil {
		return t.base.RoundTrip(req)
	}
	var kill, truncate bool
	var status int
	for _, r := range in.rules {
		if !transportKind(r.Kind) || !r.tryFire(TransportSite, -1, -1) {
			continue
		}
		switch r.Kind {
		case KindDelay:
			time.Sleep(r.Delay)
		case KindKill:
			kill = true
		case KindStatus:
			status = r.Code
			if status == 0 {
				status = http.StatusServiceUnavailable
			}
		case KindTruncate:
			truncate = true
		}
	}
	if kill {
		return nil, &InjectedError{Rule: Rule{Kind: KindKill, Site: TransportSite}}
	}
	if status != 0 {
		body := fmt.Sprintf("{\"error\":\"faultinject: injected status %d\"}\n", status)
		resp := &http.Response{
			Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
			StatusCode:    status,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        make(http.Header),
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		resp.Header.Set("Content-Type", "application/json")
		resp.Header.Set("Retry-After", "1")
		resp.Header.Set("X-Faultinject", "status")
		return resp, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || !truncate {
		return resp, err
	}
	// Cut the body halfway: the reader gets the first half of the
	// declared length (or 1 KiB when unknown) and then an unexpected
	// EOF, the same failure shape as a backend dying mid-response.
	cut := resp.ContentLength / 2
	if resp.ContentLength < 0 {
		cut = 1024
	}
	resp.Body = &truncatedBody{rc: resp.Body, remaining: cut}
	resp.Header.Set("X-Faultinject", "truncate")
	return resp, nil
}

// truncatedBody forwards the first remaining bytes of rc, then reports
// io.ErrUnexpectedEOF.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF || (err == nil && b.remaining <= 0) {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// CloseIdleConnections forwards to the base transport so wrapped
// clients can release their keep-alive pools on shutdown.
func (t *transport) CloseIdleConnections() {
	if ci, ok := t.base.(interface{ CloseIdleConnections() }); ok {
		ci.CloseIdleConnections()
	}
}

// FromSeedTransport derives a deterministic transport fault schedule
// from a seed: one to three bounded rules over the first few dozen
// round trips, mixing kills, short delays, shed bursts and mid-stream
// truncations. The same seed always yields the same schedule, making
// gateway chaos failures replayable by seed. The schedule string (via
// Rules) names exactly which round trips are hit.
func FromSeedTransport(seed int64) *Injector {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(3)
	rules := make([]Rule, n)
	for i := range rules {
		r := Rule{Site: TransportSite, Worker: -1, Band: -1}
		r.Hit = 1 + int64(rng.Intn(24))
		switch rng.Intn(5) {
		case 0, 1:
			r.Kind = KindKill
			r.Count = 1 + int64(rng.Intn(3))
		case 2:
			r.Kind = KindDelay
			r.Delay = time.Duration(rng.Intn(2000)) * time.Microsecond
		case 3:
			r.Kind = KindStatus
			r.Code = []int{503, 503, 500, 502}[rng.Intn(4)]
			r.Count = 1 + int64(rng.Intn(4))
		case 4:
			r.Kind = KindTruncate
			r.Count = 1 + int64(rng.Intn(2))
		}
		rules[i] = r
	}
	return New(rules...)
}
