package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// transportTestServer answers every request with a fixed body.
func transportTestServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func doThrough(t *testing.T, rt http.RoundTripper, url string) (*http.Response, []byte, error) {
	t.Helper()
	client := &http.Client{Transport: rt}
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	return resp, body, rerr
}

func TestTransportKill(t *testing.T) {
	ts := transportTestServer(t, "payload")
	in, err := Parse("kill@transport:n=2")
	if err != nil {
		t.Fatal(err)
	}
	rt := NewTransport(in, nil)

	if _, body, err := doThrough(t, rt, ts.URL); err != nil || string(body) != "payload" {
		t.Fatalf("request 1: body=%q err=%v, want untouched", body, err)
	}
	if _, _, err := doThrough(t, rt, ts.URL); err == nil {
		t.Fatal("request 2: want injected connection error")
	} else {
		var ie *InjectedError
		if !errors.As(err, &ie) {
			t.Fatalf("request 2: error %v does not unwrap to *InjectedError", err)
		}
	}
	if _, body, err := doThrough(t, rt, ts.URL); err != nil || string(body) != "payload" {
		t.Fatalf("request 3: body=%q err=%v, want untouched after one-shot kill", body, err)
	}
}

func TestTransportStatusBurst(t *testing.T) {
	ts := transportTestServer(t, "payload")
	in, err := Parse("status@transport:s=503:n=1:c=2")
	if err != nil {
		t.Fatal(err)
	}
	rt := NewTransport(in, nil)

	for i := 0; i < 2; i++ {
		resp, _, err := doThrough(t, rt, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("burst request %d: status %d, want 503", i+1, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("burst request %d: synthesized 503 missing Retry-After", i+1)
		}
	}
	resp, body, err := doThrough(t, rt, ts.URL)
	if err != nil || resp.StatusCode != http.StatusOK || string(body) != "payload" {
		t.Fatalf("after burst: status=%v body=%q err=%v, want clean 200", resp.StatusCode, body, err)
	}
}

func TestTransportTruncate(t *testing.T) {
	ts := transportTestServer(t, strings.Repeat("x", 4096))
	in, err := Parse("truncate@transport")
	if err != nil {
		t.Fatal(err)
	}
	rt := NewTransport(in, nil)

	resp, body, err := doThrough(t, rt, ts.URL)
	if resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("truncate must deliver headers: resp=%v err=%v", resp, err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read error = %v, want io.ErrUnexpectedEOF", err)
	}
	if len(body) >= 4096 {
		t.Fatalf("body not truncated: got %d bytes", len(body))
	}
}

func TestTransportNilInjectorPassthrough(t *testing.T) {
	ts := transportTestServer(t, "payload")
	rt := NewTransport(nil, nil)
	if _, body, err := doThrough(t, rt, ts.URL); err != nil || string(body) != "payload" {
		t.Fatalf("nil injector: body=%q err=%v, want passthrough", body, err)
	}
}

// TestTransportKindsIgnoredByVisit pins that renderer-site visits never
// consume transport rules: a kill rule must still be armed for the
// round trip after thousands of Visit calls at renderer sites.
func TestTransportKindsIgnoredByVisit(t *testing.T) {
	ts := transportTestServer(t, "payload")
	in, err := Parse("kill@transport:n=1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		in.Visit("composite", i%4, -1)
		in.Visit(TransportSite, -1, -1) // even a Visit at the transport site name
	}
	if in.Fired() {
		t.Fatal("Visit consumed a transport-kind rule")
	}
	rt := NewTransport(in, nil)
	if _, _, err := doThrough(t, rt, ts.URL); err == nil {
		t.Fatal("want injected kill on first round trip")
	}
}

func TestParseTransportGrammar(t *testing.T) {
	in, err := Parse("kill@transport:n=3;status@transport:s=500:c=4;truncate@transport;delay@transport:d=5ms")
	if err != nil {
		t.Fatal(err)
	}
	rules := in.Rules()
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	if rules[0].Kind != KindKill || rules[0].Hit != 3 {
		t.Errorf("rule 0 = %+v, want kill n=3", rules[0])
	}
	if rules[1].Kind != KindStatus || rules[1].Code != 500 || rules[1].Count != 4 {
		t.Errorf("rule 1 = %+v, want status s=500 c=4", rules[1])
	}
	if rules[2].Kind != KindTruncate {
		t.Errorf("rule 2 = %+v, want truncate", rules[2])
	}
	if rules[3].Kind != KindDelay {
		t.Errorf("rule 3 = %+v, want delay", rules[3])
	}
	if _, err := Parse("status@transport:s=200"); err == nil {
		t.Error("status outside 400-599 must be rejected")
	}
	if _, err := Parse("status@transport:c=-1"); err == nil {
		t.Error("negative count must be rejected")
	}
}

// TestFromSeedTransportDeterministic pins replayability: the same seed
// must always produce the same schedule.
func TestFromSeedTransportDeterministic(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		a, b := FromSeedTransport(seed).Rules(), FromSeedTransport(seed).Rules()
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("seed %d: schedules differ in length (%d vs %d)", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d rule %d: %v != %v", seed, i, a[i], b[i])
			}
		}
	}
}
