// Package faultinject is the deterministic fault-injection layer of the
// render stack. Like trace.Tracer and perf.Collector, an injector is an
// optional pointer threaded through the renderers: every instrumented
// site nil-checks it, so the disabled path costs one predictable branch
// and zero allocations, and the production kernels stay byte-identical.
//
// Faults are addressed, not random: a Rule names a site ("composite",
// "warp", "cachebuild", ...), optionally a worker and a band, and the Nth
// matching visit at which it fires — so a chaos test can demand "panic in
// worker 2's third stolen chunk" and get exactly that, every run. Rules
// fire once. Seed-derived schedules for soak testing come from FromSeed,
// which maps the same seed to the same schedule forever.
//
// Seven fault kinds cover the failure modes the render service and the
// gateway in front of it harden against:
//
//   - panic: a worker or setup panic, exercising recover/FrameError paths;
//   - delay: a stuck worker, exercising watchdog and imbalance paths;
//   - cancel: invokes the injector's cancel hook (a context cancel in
//     tests), exercising cooperative cancellation at an exact step;
//   - error: surfaced through Error at sites that report failures as
//     values (cache builds), exercising single-flight failure handling;
//   - kill: a transport round trip fails with a connection error before
//     any response bytes, exercising connect-failure retry paths;
//   - truncate: a transport response body is cut mid-stream with an
//     unexpected EOF, exercising mid-stream backend-death handling;
//   - status: a transport response is replaced by a synthesized error
//     status (503 by default), exercising shed/5xx-burst handling.
//
// The transport kinds are evaluated by the Transport RoundTripper (see
// transport.go); rules can fire on a burst of consecutive visits via the
// Count field (`c=` in the grammar), the 5xx-burst shape.
package faultinject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind is the fault a rule injects.
type Kind uint8

// Fault kinds.
const (
	KindPanic    Kind = iota // panic at the visit
	KindDelay                // sleep Delay at the visit
	KindCancel               // invoke the injector's cancel hook
	KindError                // make Error return an *InjectedError
	KindKill                 // fail the transport round trip with a connect error
	KindTruncate             // cut the transport response body mid-stream
	KindStatus               // replace the transport response with status Code
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindCancel:
		return "cancel"
	case KindError:
		return "error"
	case KindKill:
		return "kill"
	case KindTruncate:
		return "truncate"
	case KindStatus:
		return "status"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// transportKind reports whether k is evaluated by the Transport
// RoundTripper rather than the renderers' Visit/Error sites.
func transportKind(k Kind) bool {
	return k == KindKill || k == KindTruncate || k == KindStatus || k == KindDelay
}

// Rule describes one fault. Zero Worker/Band match only worker/band 0;
// use -1 for "any". Hit is the Nth matching visit that fires the rule
// (1-based; 0 means the first). A rule fires on Count consecutive
// matching visits starting at Hit (0 or 1 = once) — the burst shape for
// transport faults — so every rule fires a bounded number of times.
type Rule struct {
	Kind   Kind
	Site   string        // instrumented site name; "" matches any site
	Worker int           // worker id to match, -1 = any
	Band   int           // band to match, -1 = any
	Hit    int64         // fire on the Nth matching visit (0 or 1 = first)
	Count  int64         // consecutive matching visits that fire (0 or 1 = once)
	Delay  time.Duration // sleep for KindDelay
	Code   int           // response status for KindStatus (0 = 503)
}

func (r Rule) String() string {
	s := fmt.Sprintf("%s@%s", r.Kind, r.Site)
	if r.Worker >= 0 {
		s += fmt.Sprintf(":w=%d", r.Worker)
	}
	if r.Band >= 0 {
		s += fmt.Sprintf(":b=%d", r.Band)
	}
	if r.Hit > 1 {
		s += fmt.Sprintf(":n=%d", r.Hit)
	}
	if r.Count > 1 {
		s += fmt.Sprintf(":c=%d", r.Count)
	}
	if r.Kind == KindDelay {
		s += fmt.Sprintf(":d=%s", r.Delay)
	}
	if r.Kind == KindStatus && r.Code != 0 {
		s += fmt.Sprintf(":s=%d", r.Code)
	}
	return s
}

// rule pairs a Rule with its bounded-fire state.
type rule struct {
	Rule
	seen  atomic.Int64
	fired atomic.Bool
}

// tryFire reports whether this visit is one the rule fires on: the
// visits numbered Hit through Hit+Count-1 among those matching the
// rule's filters. Each matching visit draws a unique sequence number, so
// concurrent visitors never double-fire a slot.
func (r *rule) tryFire(site string, worker, band int) bool {
	if r.Site != "" && r.Site != site {
		return false
	}
	if r.Worker >= 0 && r.Worker != worker {
		return false
	}
	if r.Band >= 0 && r.Band != band {
		return false
	}
	want := r.Hit
	if want < 1 {
		want = 1
	}
	cnt := r.Count
	if cnt < 1 {
		cnt = 1
	}
	n := r.seen.Add(1)
	if n < want || n >= want+cnt {
		return false
	}
	r.fired.Store(true)
	return true
}

// InjectedPanic is the value injected panics carry, so recovery layers
// and tests can tell synthetic faults from real ones.
type InjectedPanic struct{ Rule Rule }

func (p *InjectedPanic) Error() string { return "faultinject: injected " + p.Rule.String() }

// InjectedError is the error returned by Error when an error rule fires.
type InjectedError struct{ Rule Rule }

func (e *InjectedError) Error() string { return "faultinject: injected " + e.Rule.String() }

// Injector evaluates a fault schedule at instrumented sites. A nil
// *Injector is valid and disables every site. All methods are safe for
// concurrent use from any number of workers.
type Injector struct {
	rules  []*rule
	cancel atomic.Value // func()
}

// New builds an injector from explicit rules.
func New(rules ...Rule) *Injector {
	in := &Injector{rules: make([]*rule, len(rules))}
	for i, r := range rules {
		in.rules[i] = &rule{Rule: r}
	}
	return in
}

// SetCancel installs the hook KindCancel rules invoke — typically a
// context.CancelFunc, so a schedule can cancel a frame at an exact step.
func (in *Injector) SetCancel(fn func()) {
	if in == nil {
		return
	}
	in.cancel.Store(fn)
}

// Visit evaluates the schedule at a site: a matching panic rule panics
// with *InjectedPanic, a delay rule sleeps, a cancel rule invokes the
// cancel hook. Error rules are ignored (see Error), and the
// transport-only kinds (kill, truncate, status) are left for the
// Transport RoundTripper. Nil injectors and non-matching visits are free.
func (in *Injector) Visit(site string, worker, band int) {
	if in == nil {
		return
	}
	for _, r := range in.rules {
		if r.Kind == KindError || r.Kind == KindKill || r.Kind == KindTruncate ||
			r.Kind == KindStatus || !r.tryFire(site, worker, band) {
			continue
		}
		switch r.Kind {
		case KindPanic:
			panic(&InjectedPanic{Rule: r.Rule})
		case KindDelay:
			time.Sleep(r.Delay)
		case KindCancel:
			if fn, _ := in.cancel.Load().(func()); fn != nil {
				fn()
			}
		}
	}
}

// Error evaluates the schedule's error rules at a site that reports
// failures as values, returning *InjectedError when one fires.
func (in *Injector) Error(site string, worker, band int) error {
	if in == nil {
		return nil
	}
	for _, r := range in.rules {
		if r.Kind == KindError && r.tryFire(site, worker, band) {
			return &InjectedError{Rule: r.Rule}
		}
	}
	return nil
}

// Fired reports whether any rule has fired — chaos tests use it to tell
// "the frame survived the fault" from "the fault never triggered".
func (in *Injector) Fired() bool {
	if in == nil {
		return false
	}
	for _, r := range in.rules {
		if r.fired.Load() {
			return true
		}
	}
	return false
}

// Rules returns a copy of the schedule, for logging failed chaos seeds.
func (in *Injector) Rules() []Rule {
	if in == nil {
		return nil
	}
	out := make([]Rule, len(in.rules))
	for i, r := range in.rules {
		out[i] = r.Rule
	}
	return out
}

// Parse builds an injector from a flag-friendly spec: rules separated by
// ";" or ",", each of the form
//
//	kind@site[:w=WORKER][:b=BAND][:n=HIT][:c=COUNT][:d=DURATION][:s=STATUS]
//
// e.g. "panic@composite:w=1:b=2" or "delay@warp:d=50ms;cancel@scanline:n=100",
// and for the transport kinds "kill@transport:n=3" or
// "status@transport:s=503:n=10:c=5" (a five-request 503 burst starting at
// the tenth round trip). An empty spec yields a nil injector (faults
// disabled).
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, part := range strings.FieldsFunc(spec, func(c rune) bool { return c == ';' || c == ',' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return New(rules...), nil
}

func parseRule(s string) (Rule, error) {
	r := Rule{Worker: -1, Band: -1}
	kind, rest, ok := strings.Cut(s, "@")
	if !ok {
		return r, fmt.Errorf("faultinject: rule %q missing '@site'", s)
	}
	switch kind {
	case "panic":
		r.Kind = KindPanic
	case "delay":
		r.Kind = KindDelay
		r.Delay = time.Millisecond
	case "cancel":
		r.Kind = KindCancel
	case "error":
		r.Kind = KindError
	case "kill":
		r.Kind = KindKill
	case "truncate":
		r.Kind = KindTruncate
	case "status":
		r.Kind = KindStatus
	default:
		return r, fmt.Errorf("faultinject: unknown fault kind %q in %q", kind, s)
	}
	fields := strings.Split(rest, ":")
	r.Site = fields[0]
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return r, fmt.Errorf("faultinject: bad option %q in %q", f, s)
		}
		switch k {
		case "w", "b", "n", "c":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return r, fmt.Errorf("faultinject: bad %s=%q in %q", k, v, s)
			}
			switch k {
			case "w":
				r.Worker = int(n)
			case "b":
				r.Band = int(n)
			case "n":
				r.Hit = n
			case "c":
				r.Count = n
			}
		case "s":
			n, err := strconv.Atoi(v)
			if err != nil || n < 400 || n > 599 {
				return r, fmt.Errorf("faultinject: bad status %q in %q (want 400-599)", v, s)
			}
			r.Code = n
		case "d":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return r, fmt.Errorf("faultinject: bad duration %q in %q", v, s)
			}
			r.Delay = d
		default:
			return r, fmt.Errorf("faultinject: unknown option %q in %q", k, s)
		}
	}
	if r.Site == "" {
		return r, fmt.Errorf("faultinject: rule %q has empty site", s)
	}
	return r, nil
}

// Sites instrumented by the renderers, for seed-derived schedules.
var soakSites = []string{
	"setup", "clear", "composite", "steal", "scanline", "band-wait", "warp", "barrier",
}

// FromSeed derives a small pseudo-random fault schedule from a seed: one
// or two one-shot rules over the renderers' instrumented sites, with
// sub-millisecond delays so soak tests stay fast. The same seed always
// yields the same schedule, making chaos failures replayable by seed.
func FromSeed(seed int64, workers int) *Injector {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(2)
	rules := make([]Rule, n)
	for i := range rules {
		r := Rule{Site: soakSites[rng.Intn(len(soakSites))], Worker: -1, Band: -1}
		if workers > 0 && rng.Intn(2) == 0 {
			r.Worker = rng.Intn(workers)
		}
		r.Hit = int64(rng.Intn(64))
		switch rng.Intn(4) {
		case 0, 1:
			r.Kind = KindPanic
		case 2:
			r.Kind = KindDelay
			r.Delay = time.Duration(rng.Intn(500)) * time.Microsecond
		case 3:
			r.Kind = KindCancel
		}
		rules[i] = r
	}
	return New(rules...)
}
