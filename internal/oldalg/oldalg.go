// Package oldalg implements the original parallel shear-warp algorithm the
// paper analyzes in section 3 (Lacroute '95 / Singh et al. '94):
//
//   - Compositing: the intermediate-image scanlines are grouped into
//     fixed-size chunks assigned round-robin (interleaved) to processors;
//     idle processors steal remaining chunks. The whole intermediate image
//     is composited "from the very beginning to the end", including empty
//     border scanlines.
//   - A global barrier separates the phases.
//   - Warp: the final image is divided into square tiles assigned
//     round-robin; no stealing.
//
// This file is the native (goroutine) implementation used for correctness
// testing and host benchmarks; sim.go drives the same scheduling logic on
// the deterministic multiprocessor simulator.
package oldalg

import (
	"context"
	rtrace "runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"shearwarp/internal/composite"
	"shearwarp/internal/faultinject"
	"shearwarp/internal/img"
	"shearwarp/internal/par"
	"shearwarp/internal/perf"
	"shearwarp/internal/render"
	"shearwarp/internal/telemetry"
	"shearwarp/internal/warp"
)

// warpScratchPool recycles packed-warp row caches across frames and
// workers; unlike newalg, this algorithm has no persistent renderer
// object to own them.
var warpScratchPool sync.Pool

// Config tunes the old parallel algorithm.
type Config struct {
	Procs     int // number of workers; 0 means 1
	ChunkSize int // scanlines per compositing chunk; 0 selects a heuristic
	TileSize  int // warp tile edge in pixels; 0 selects 32
	// Perf, when non-nil, collects per-worker phase timings and work
	// counters (the native Figure-5/6 breakdown). All instrumentation is
	// nil-checked, so the default path performs no clock reads.
	Perf *perf.Collector
	// Faults, when non-nil, injects deterministic faults at the worker
	// phase sites (internal/faultinject). Nil-checked everywhere.
	Faults *faultinject.Injector
	// Spans, when non-nil, receives one timestamped span per worker phase
	// (per-chunk composite own/steal, barrier wait, warp) for the
	// service's per-request traces. It shares Perf's clock reads and is
	// nil-checked at every site.
	Spans *telemetry.FrameSpans
}

// DefaultChunkSize mirrors the paper's empirically-tuned task size: small
// enough for load balance across P processors, large enough for spatial
// locality.
func DefaultChunkSize(height, procs int) int {
	c := height / (procs * 8)
	if c < 1 {
		c = 1
	}
	if c > 16 {
		c = 16
	}
	return c
}

func (c *Config) normalize(fr *render.Frame) {
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.ChunkSize < 1 {
		c.ChunkSize = DefaultChunkSize(fr.M.H, c.Procs)
	}
	if c.TileSize < 1 {
		c.TileSize = 32
	}
}

// ProcStats reports one worker's share of a frame.
type ProcStats struct {
	Composite composite.Counters
	Warp      warp.Counters
	Steals    int // chunks obtained by stealing
	Chunks    int // chunks composited in total
	Tiles     int // warp tiles processed
}

// Result is a rendered frame plus its per-processor accounting.
type Result struct {
	Out     *img.Final
	PerProc []ProcStats
}

// Stats aggregates the per-processor counters.
func (r *Result) Stats() render.FrameStats {
	var st render.FrameStats
	for i := range r.PerProc {
		st.Composite.Add(r.PerProc[i].Composite)
		st.Warp.Add(r.PerProc[i].Warp)
	}
	return st
}

// Render renders one frame with the old parallel algorithm using native
// goroutines. The output image is bit-identical to the serial renderer's.
// Render is the uncancellable entry point: it runs under
// context.Background and re-panics a *render.FrameError if a worker
// panicked. Services use RenderCtx.
func Render(r *render.Renderer, yaw, pitch float64, cfg Config) *Result {
	res, err := RenderCtx(context.Background(), r, yaw, pitch, cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// abortState is the frame's shared cancellation/failure record: flag is
// the cancel flag every worker polls at scanline/tile granularity, err
// holds the first failure.
type abortState struct {
	flag atomic.Bool
	mu   sync.Mutex
	err  error
}

func (a *abortState) abort(err error) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
	a.flag.Store(true)
}

// setupFrame runs the per-frame setup with panic containment, so a
// degenerate view matrix or injected setup fault converts to a
// *render.FrameError before any worker starts.
func setupFrame(r *render.Renderer, yaw, pitch float64, fi *faultinject.Injector) (fr *render.Frame, err error) {
	defer func() {
		if v := recover(); v != nil {
			fr, err = nil, render.NewFrameError(-1, "setup", -1, v)
		}
	}()
	fi.Visit("setup", -1, -1)
	return r.Setup(yaw, pitch), nil
}

// RenderCtx is Render with cooperative cancellation and panic isolation.
// When ctx is cancelled, every worker observes the shared abort flag
// within one scanline (compositing) or one tile (warping) of work, drains
// through the inter-phase barrier so no peer deadlocks, and the call
// returns ctx's error. A panic in any worker is recovered into a
// *render.FrameError; its deferred recovery arrives at the barrier on the
// dead worker's behalf if it had not yet done so, keeping the barrier
// count intact. On error the returned Result is nil.
func RenderCtx(ctx context.Context, r *render.Renderer, yaw, pitch float64, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fi := cfg.Faults
	sr := cfg.Spans
	var tSetup time.Time
	if sr != nil {
		tSetup = time.Now()
	}
	fr, err := setupFrame(r, yaw, pitch, fi)
	if err != nil {
		return nil, err
	}
	if sr != nil {
		sr.Record(-1, "setup", telemetry.CatRequest, tSetup, time.Since(tSetup))
	}
	cfg.normalize(fr)
	res := &Result{Out: fr.Out, PerProc: make([]ProcStats, cfg.Procs)}
	pc := cfg.Perf
	pc.Reset(cfg.Procs)

	// One runtime/trace task per frame; worker phase regions attach to it.
	tctx := context.Background()
	var task *rtrace.Task
	if rtrace.IsEnabled() {
		tctx, task = rtrace.NewTask(tctx, "shearwarp.frame")
	}

	queue := par.NewInterleaved(0, fr.M.H, cfg.ChunkSize, cfg.Procs)
	var qmu sync.Mutex
	barrier := par.NewBarrier(cfg.Procs)
	tiles := tileGrid(fr.Out.W, fr.Out.H, cfg.TileSize)

	var ab abortState
	var stopWatch func() bool
	if ctx.Done() != nil {
		stopWatch = context.AfterFunc(ctx, func() {
			ab.abort(ctx.Err())
		})
	}

	var wg sync.WaitGroup
	pc.FrameStart()
	for p := 0; p < cfg.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// The worker's panic domain: phase/band are kept current for
			// the FrameError, and a worker that dies before reaching the
			// inter-phase barrier still arrives there in recovery so its
			// peers (who drain to the barrier on abort) are never stranded.
			phase, band := "composite", -1
			arrivedBarrier := false
			defer func() {
				if v := recover(); v != nil {
					ab.abort(render.NewFrameError(p, phase, band, v))
					if !arrivedBarrier {
						barrier.Wait()
					}
				}
			}()
			ps := &res.PerProc[p]
			// One timing gate for both recorders; AddPhase and Record are
			// nil-safe, so each site reads the clock once and feeds both.
			timed := pc != nil || sr != nil
			var tw, t0 time.Time
			if timed {
				tw = time.Now()
				t0 = tw
			}

			// Compositing phase: own chunks, then stealing. Chunk times
			// are attributed to the own or steal bucket as they complete.
			// The abort flag is polled per scanline; an aborting worker
			// drains to the barrier rather than returning, so the barrier
			// count stays intact.
			cc := fr.NewCompositeCtx()
			reg := rtrace.StartRegion(tctx, "composite")
		compositing:
			for !ab.flag.Load() {
				qmu.Lock()
				c, stolen, ok := queue.Next(p)
				qmu.Unlock()
				if !ok {
					break
				}
				band = p
				if fi != nil {
					if stolen {
						fi.Visit("steal", p, -1)
					} else {
						fi.Visit("composite", p, p)
					}
				}
				ps.Chunks++
				if stolen {
					ps.Steals++
				}
				for row := c.Lo; row < c.Hi; row++ {
					if ab.flag.Load() {
						break compositing
					}
					if fi != nil {
						fi.Visit("scanline", p, -1)
					}
					cc.Scanline(row, &ps.Composite)
				}
				if timed {
					ph, name := perf.PhaseCompositeOwn, "composite-own"
					if stolen {
						ph, name = perf.PhaseCompositeSteal, "composite-steal"
					}
					d := time.Since(t0)
					pc.AddPhase(p, ph, d)
					sr.Record(p, name, telemetry.CatBusy, t0, d)
					t0 = time.Now()
				}
			}
			reg.End()

			// Global barrier between compositing and warping.
			phase, band = "barrier", -1
			if fi != nil {
				fi.Visit("barrier", p, -1)
			}
			reg = rtrace.StartRegion(tctx, "barrier-wait")
			barrier.Wait()
			arrivedBarrier = true
			reg.End()
			if timed {
				d := time.Since(t0)
				pc.AddPhase(p, perf.PhaseWait, d)
				sr.Record(p, "barrier-wait", telemetry.CatSync, t0, d)
				t0 = time.Now()
			}
			if ab.flag.Load() {
				return
			}

			// Warp phase: round-robin tiles, no stealing. The abort flag
			// is polled per tile.
			phase = "warp"
			reg = rtrace.StartRegion(tctx, "warp")
			ws, _ := warpScratchPool.Get().(*warp.Scratch)
			if ws == nil {
				ws = &warp.Scratch{}
			}
			wc := fr.NewWarpCtx(ws)
			defer warpScratchPool.Put(ws)
			for t := p; t < len(tiles); t += cfg.Procs {
				if ab.flag.Load() {
					break
				}
				if fi != nil {
					fi.Visit("warp", p, t)
				}
				tl := tiles[t]
				wc.WarpTile(tl[0], tl[1], tl[2], tl[3], &ps.Warp)
				ps.Tiles++
			}
			reg.End()
			if timed {
				d := time.Since(t0)
				pc.AddPhase(p, perf.PhaseWarp, d)
				sr.Record(p, "warp", telemetry.CatBusy, t0, d)
			}
			if pc != nil {
				pc.AddPhase(p, perf.PhaseTotal, time.Since(tw))
				pc.AddCount(p, perf.CounterScanlines, ps.Composite.Scanlines)
				pc.AddCount(p, perf.CounterChunks, int64(ps.Chunks))
				pc.AddCount(p, perf.CounterSteals, int64(ps.Steals))
				pc.AddCount(p, perf.CounterEarlyTerm, ps.Composite.Skips)
				pc.AddCount(p, perf.CounterWarpSpans, ps.Warp.Rows)
			}
		}(p)
	}
	wg.Wait()
	pc.FrameEnd()
	if task != nil {
		task.End()
	}
	if stopWatch != nil {
		stopWatch()
	}

	if ab.flag.Load() {
		ab.mu.Lock()
		err := ab.err
		ab.mu.Unlock()
		if err == nil {
			err = ctx.Err()
		}
		if err == nil {
			err = context.Canceled
		}
		return nil, err
	}
	// A cancellation landing in the final warp tiles can lose the race
	// against frame completion; honour the context anyway so a cancelled
	// frame never reports success.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// tileGrid enumerates the final image's square tiles row-major as
// [x0, y0, x1, y1].
func tileGrid(w, h, size int) [][4]int {
	var tiles [][4]int
	for y := 0; y < h; y += size {
		y1 := min(y+size, h)
		for x := 0; x < w; x += size {
			tiles = append(tiles, [4]int{x, y, min(x+size, w), y1})
		}
	}
	return tiles
}
