// Package oldalg implements the original parallel shear-warp algorithm the
// paper analyzes in section 3 (Lacroute '95 / Singh et al. '94):
//
//   - Compositing: the intermediate-image scanlines are grouped into
//     fixed-size chunks assigned round-robin (interleaved) to processors;
//     idle processors steal remaining chunks. The whole intermediate image
//     is composited "from the very beginning to the end", including empty
//     border scanlines.
//   - A global barrier separates the phases.
//   - Warp: the final image is divided into square tiles assigned
//     round-robin; no stealing.
//
// This file is the native (goroutine) implementation used for correctness
// testing and host benchmarks; sim.go drives the same scheduling logic on
// the deterministic multiprocessor simulator.
package oldalg

import (
	"context"
	rtrace "runtime/trace"
	"sync"
	"time"

	"shearwarp/internal/composite"
	"shearwarp/internal/img"
	"shearwarp/internal/par"
	"shearwarp/internal/perf"
	"shearwarp/internal/render"
	"shearwarp/internal/warp"
)

// Config tunes the old parallel algorithm.
type Config struct {
	Procs     int // number of workers; 0 means 1
	ChunkSize int // scanlines per compositing chunk; 0 selects a heuristic
	TileSize  int // warp tile edge in pixels; 0 selects 32
	// Perf, when non-nil, collects per-worker phase timings and work
	// counters (the native Figure-5/6 breakdown). All instrumentation is
	// nil-checked, so the default path performs no clock reads.
	Perf *perf.Collector
}

// DefaultChunkSize mirrors the paper's empirically-tuned task size: small
// enough for load balance across P processors, large enough for spatial
// locality.
func DefaultChunkSize(height, procs int) int {
	c := height / (procs * 8)
	if c < 1 {
		c = 1
	}
	if c > 16 {
		c = 16
	}
	return c
}

func (c *Config) normalize(fr *render.Frame) {
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.ChunkSize < 1 {
		c.ChunkSize = DefaultChunkSize(fr.M.H, c.Procs)
	}
	if c.TileSize < 1 {
		c.TileSize = 32
	}
}

// ProcStats reports one worker's share of a frame.
type ProcStats struct {
	Composite composite.Counters
	Warp      warp.Counters
	Steals    int // chunks obtained by stealing
	Chunks    int // chunks composited in total
	Tiles     int // warp tiles processed
}

// Result is a rendered frame plus its per-processor accounting.
type Result struct {
	Out     *img.Final
	PerProc []ProcStats
}

// Stats aggregates the per-processor counters.
func (r *Result) Stats() render.FrameStats {
	var st render.FrameStats
	for i := range r.PerProc {
		st.Composite.Add(r.PerProc[i].Composite)
		st.Warp.Add(r.PerProc[i].Warp)
	}
	return st
}

// Render renders one frame with the old parallel algorithm using native
// goroutines. The output image is bit-identical to the serial renderer's.
func Render(r *render.Renderer, yaw, pitch float64, cfg Config) *Result {
	fr := r.Setup(yaw, pitch)
	cfg.normalize(fr)
	res := &Result{Out: fr.Out, PerProc: make([]ProcStats, cfg.Procs)}
	pc := cfg.Perf
	pc.Reset(cfg.Procs)

	// One runtime/trace task per frame; worker phase regions attach to it.
	ctx := context.Background()
	var task *rtrace.Task
	if rtrace.IsEnabled() {
		ctx, task = rtrace.NewTask(ctx, "shearwarp.frame")
	}

	queue := par.NewInterleaved(0, fr.M.H, cfg.ChunkSize, cfg.Procs)
	var qmu sync.Mutex
	barrier := par.NewBarrier(cfg.Procs)
	tiles := tileGrid(fr.Out.W, fr.Out.H, cfg.TileSize)

	var wg sync.WaitGroup
	pc.FrameStart()
	for p := 0; p < cfg.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ps := &res.PerProc[p]
			var tw, t0 time.Time
			if pc != nil {
				tw = time.Now()
				t0 = tw
			}

			// Compositing phase: own chunks, then stealing. Chunk times
			// are attributed to the own or steal bucket as they complete.
			cc := fr.NewCompositeCtx()
			reg := rtrace.StartRegion(ctx, "composite")
			for {
				qmu.Lock()
				c, stolen, ok := queue.Next(p)
				qmu.Unlock()
				if !ok {
					break
				}
				ps.Chunks++
				if stolen {
					ps.Steals++
				}
				for row := c.Lo; row < c.Hi; row++ {
					cc.Scanline(row, &ps.Composite)
				}
				if pc != nil {
					ph := perf.PhaseCompositeOwn
					if stolen {
						ph = perf.PhaseCompositeSteal
					}
					pc.AddPhase(p, ph, time.Since(t0))
					t0 = time.Now()
				}
			}
			reg.End()

			// Global barrier between compositing and warping.
			reg = rtrace.StartRegion(ctx, "barrier-wait")
			barrier.Wait()
			reg.End()
			if pc != nil {
				pc.AddPhase(p, perf.PhaseWait, time.Since(t0))
				t0 = time.Now()
			}

			// Warp phase: round-robin tiles, no stealing.
			reg = rtrace.StartRegion(ctx, "warp")
			wc := warp.Ctx{F: &fr.F, M: fr.M, Out: fr.Out}
			for t := p; t < len(tiles); t += cfg.Procs {
				tl := tiles[t]
				wc.WarpTile(tl[0], tl[1], tl[2], tl[3], &ps.Warp)
				ps.Tiles++
			}
			reg.End()
			if pc != nil {
				pc.AddPhase(p, perf.PhaseWarp, time.Since(t0))
				pc.AddPhase(p, perf.PhaseTotal, time.Since(tw))
				pc.AddCount(p, perf.CounterScanlines, ps.Composite.Scanlines)
				pc.AddCount(p, perf.CounterChunks, int64(ps.Chunks))
				pc.AddCount(p, perf.CounterSteals, int64(ps.Steals))
				pc.AddCount(p, perf.CounterEarlyTerm, ps.Composite.Skips)
				pc.AddCount(p, perf.CounterWarpSpans, ps.Warp.Rows)
			}
		}(p)
	}
	wg.Wait()
	pc.FrameEnd()
	if task != nil {
		task.End()
	}
	return res
}

// tileGrid enumerates the final image's square tiles row-major as
// [x0, y0, x1, y1].
func tileGrid(w, h, size int) [][4]int {
	var tiles [][4]int
	for y := 0; y < h; y += size {
		y1 := min(y+size, h)
		for x := 0; x < w; x += size {
			tiles = append(tiles, [4]int{x, y, min(x+size, w), y1})
		}
	}
	return tiles
}
