package oldalg

import (
	"testing"

	"shearwarp/internal/img"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

func TestMatchesSerialAcrossProcs(t *testing.T) {
	r := render.New(vol.MRIBrain(24), render.Options{})
	want, _ := r.RenderSerial(0.5, 0.3)
	for _, procs := range []int{1, 2, 3, 7, 16} {
		res := Render(r, 0.5, 0.3, Config{Procs: procs})
		if !img.Equal(want, res.Out) {
			d := img.Compare(want, res.Out)
			t.Fatalf("procs=%d: image differs from serial: %+v", procs, d)
		}
	}
}

func TestMatchesSerialAcrossViews(t *testing.T) {
	r := render.New(vol.CTHead(20), render.Options{})
	for _, v := range [][2]float64{{0, 0}, {1.2, 0.8}, {2.9, -0.5}} {
		want, _ := r.RenderSerial(v[0], v[1])
		res := Render(r, v[0], v[1], Config{Procs: 4, ChunkSize: 2, TileSize: 9})
		if !img.Equal(want, res.Out) {
			t.Fatalf("view %v: parallel image differs", v)
		}
	}
}

func TestWorkIsConserved(t *testing.T) {
	// On this 1-CPU host a single goroutine may drain most of the queue
	// (the scheduler rarely preempts); deterministic per-processor
	// distribution is asserted by the simulator tests instead. Here we
	// check conservation: every scanline composited exactly once and every
	// tile warped by its statically assigned processor.
	r := render.New(vol.MRIBrain(32), render.Options{})
	fr := r.Setup(0.4, 0.2)
	res := Render(r, 0.4, 0.2, Config{Procs: 4, ChunkSize: 1})
	var lines int64
	for p := range res.PerProc {
		lines += res.PerProc[p].Composite.Scanlines
		if res.PerProc[p].Tiles == 0 {
			t.Fatalf("proc %d warped no tiles", p)
		}
	}
	if lines != int64(fr.M.H) {
		t.Fatalf("composited %d scanlines, image has %d", lines, fr.M.H)
	}
}

func TestAggregateStatsMatchSerialWork(t *testing.T) {
	// The same total compositing work regardless of processor count, modulo
	// early-termination order (which is per-row and thus identical).
	r := render.New(vol.MRIBrain(24), render.Options{})
	_, st1 := r.RenderSerial(0.5, 0.3)
	res := Render(r, 0.5, 0.3, Config{Procs: 5})
	st5 := res.Stats()
	if st5.Composite.Samples != st1.Composite.Samples {
		t.Fatalf("samples differ: serial %d parallel %d",
			st1.Composite.Samples, st5.Composite.Samples)
	}
	if st5.Warp.Pixels != st1.Warp.Pixels {
		t.Fatalf("warp pixels differ: serial %d parallel %d",
			st1.Warp.Pixels, st5.Warp.Pixels)
	}
}

func TestDefaultChunkSizeBounds(t *testing.T) {
	if c := DefaultChunkSize(10, 32); c < 1 {
		t.Fatal("chunk size must be at least 1")
	}
	if c := DefaultChunkSize(100000, 1); c > 16 {
		t.Fatalf("chunk size %d too large", c)
	}
}

func TestTileGridCoversImage(t *testing.T) {
	tiles := tileGrid(100, 70, 32)
	covered := make([]int, 100*70)
	for _, tl := range tiles {
		for y := tl[1]; y < tl[3]; y++ {
			for x := tl[0]; x < tl[2]; x++ {
				covered[y*100+x]++
			}
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("pixel %d covered %d times", i, c)
		}
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	r := render.New(vol.MRIBrain(16), render.Options{})
	res := Render(r, 0.3, 0.1, Config{}) // all defaults
	if len(res.PerProc) != 1 {
		t.Fatalf("default procs = %d, want 1", len(res.PerProc))
	}
	want, _ := r.RenderSerial(0.3, 0.1)
	if !img.Equal(want, res.Out) {
		t.Fatal("default config image differs from serial")
	}
}
