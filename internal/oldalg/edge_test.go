package oldalg

import (
	"testing"

	"shearwarp/internal/classify"
	"shearwarp/internal/img"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

func TestMoreProcsThanScanlines(t *testing.T) {
	r := render.New(vol.MRIBrain(10), render.Options{})
	want, _ := r.RenderSerial(0.4, 0.2)
	res := Render(r, 0.4, 0.2, Config{Procs: 64, ChunkSize: 1})
	if !img.Equal(want, res.Out) {
		t.Fatal("over-provisioned render differs from serial")
	}
}

func TestEmptyVolume(t *testing.T) {
	r := render.New(vol.New(12, 12, 12), render.Options{})
	res := Render(r, 0.5, 0.3, Config{Procs: 4})
	if res.Out.NonBlackCount() != 0 {
		t.Fatal("empty volume rendered pixels")
	}
}

func TestFullyOpaqueVolume(t *testing.T) {
	v := vol.New(16, 16, 16)
	for i := range v.Data {
		v.Data[i] = 255
	}
	r := render.New(v, render.Options{})
	want, _ := r.RenderSerial(0.5, 0.3)
	res := Render(r, 0.5, 0.3, Config{Procs: 4})
	if !img.Equal(want, res.Out) {
		t.Fatal("opaque volume differs from serial")
	}
}

func TestTinyTiles(t *testing.T) {
	r := render.New(vol.MRIBrain(16), render.Options{})
	want, _ := r.RenderSerial(0.5, 0.3)
	res := Render(r, 0.5, 0.3, Config{Procs: 4, TileSize: 1})
	if !img.Equal(want, res.Out) {
		t.Fatal("1-pixel tiles corrupt the image")
	}
}

func TestCTWithCorrection(t *testing.T) {
	r := render.New(vol.CTHead(18), render.Options{
		Transfer: classify.CTTransfer, OpacityCorrection: true,
	})
	want, _ := r.RenderSerial(0.7, -0.4)
	res := Render(r, 0.7, -0.4, Config{Procs: 5})
	if !img.Equal(want, res.Out) {
		t.Fatal("corrected CT parallel render differs from serial")
	}
}

func TestAxisAlignedView(t *testing.T) {
	// Zero shear: the intermediate image equals the volume cross-section.
	r := render.New(vol.MRIBrain(16), render.Options{})
	want, _ := r.RenderSerial(0, 0)
	res := Render(r, 0, 0, Config{Procs: 3})
	if !img.Equal(want, res.Out) {
		t.Fatal("axis-aligned parallel render differs")
	}
}
