package oldalg

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"shearwarp/internal/faultinject"
	"shearwarp/internal/img"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

// TestRenderCtxPanicBecomesFrameError injects panics at each of the old
// algorithm's phase sites, requiring a typed error, no stranded peers at
// the inter-phase barrier, and byte-identical output afterwards.
func TestRenderCtxPanicBecomesFrameError(t *testing.T) {
	const procs = 4
	r := render.New(vol.MRIBrain(32), render.Options{})
	want, _ := r.RenderSerial(0.5, 0.25)

	for _, site := range []string{"setup", "composite", "scanline", "barrier", "warp"} {
		t.Run(site, func(t *testing.T) {
			before := runtime.NumGoroutine()
			in := faultinject.New(faultinject.Rule{
				Kind: faultinject.KindPanic, Site: site, Worker: -1, Band: -1,
			})
			res, err := RenderCtx(context.Background(), r, 0.5, 0.25,
				Config{Procs: procs, Faults: in})
			if in.Fired() {
				var fe *render.FrameError
				if !errors.As(err, &fe) {
					t.Fatalf("panic at %s: err = %v, want *render.FrameError", site, err)
				}
			} else if err != nil || res == nil {
				t.Fatalf("site %s never fired but frame failed: %v", site, err)
			}

			res2, err := RenderCtx(context.Background(), r, 0.5, 0.25, Config{Procs: procs})
			if err != nil {
				t.Fatalf("frame after panic failed: %v", err)
			}
			if !img.Equal(want, res2.Out) {
				t.Fatalf("frame after panic at %s differs from serial", site)
			}

			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before+2 {
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: before %d, now %d", before, runtime.NumGoroutine())
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestRenderCtxCancel cancels mid-composite through the injector's cancel
// hook and requires context.Canceled plus clean reuse.
func TestRenderCtxCancel(t *testing.T) {
	const procs = 4
	r := render.New(vol.MRIBrain(32), render.Options{})
	want, _ := r.RenderSerial(0.5, 0.25)

	in := faultinject.New(faultinject.Rule{
		Kind: faultinject.KindCancel, Site: "scanline", Worker: -1, Band: -1, Hit: 20,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in.SetCancel(cancel)
	res, err := RenderCtx(ctx, r, 0.5, 0.25, Config{Procs: procs, Faults: in})
	if !in.Fired() {
		t.Fatal("cancel rule never fired")
	}
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("err = %v res = %v, want context.Canceled and nil", err, res)
	}

	res2, err := RenderCtx(context.Background(), r, 0.5, 0.25, Config{Procs: procs})
	if err != nil {
		t.Fatalf("frame after cancel failed: %v", err)
	}
	if !img.Equal(want, res2.Out) {
		t.Fatal("frame after cancel differs from serial")
	}
}

// TestRenderCtxPreCancelled must fail fast.
func TestRenderCtxPreCancelled(t *testing.T) {
	r := render.New(vol.MRIBrain(16), render.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RenderCtx(ctx, r, 0.5, 0.25, Config{Procs: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
