module shearwarp

go 1.22
