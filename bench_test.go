package shearwarp

// The benchmark harness: kernel benchmarks for the native renderers plus
// one benchmark per reproduced paper figure. The figure benchmarks run the
// full simulation experiment at the small scale and report the key shape
// metric (speedup or ratio) via b.ReportMetric, so `go test -bench=.`
// regenerates the paper's result set end to end.
//
// Shapes — who wins, by what factor — are the reproduction target, not the
// paper's absolute times (those came from 1990s hardware).

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"shearwarp/internal/classify"
	"shearwarp/internal/composite"
	"shearwarp/internal/cpudispatch"
	"shearwarp/internal/experiments"
	"shearwarp/internal/newalg"
	"shearwarp/internal/perf"
	"shearwarp/internal/render"
	"shearwarp/internal/rendermode"
	"shearwarp/internal/rle"
	"shearwarp/internal/vol"
	"shearwarp/internal/warp"
	"shearwarp/internal/xform"
)

// ---- native kernel benchmarks ----

func BenchmarkClassify(b *testing.B) {
	v := vol.MRIBrain(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classify.Classify(v, classify.Options{})
	}
}

func BenchmarkRLEEncode(b *testing.B) {
	c := classify.Classify(vol.MRIBrain(64), classify.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rle.Encode(c, xform.AxisZ)
	}
}

func BenchmarkFactorize(b *testing.B) {
	view := xform.ViewMatrix(256, 256, 167, 0.5, 0.3)
	for i := 0; i < b.N; i++ {
		xform.Factorize(256, 256, 167, view)
	}
}

func benchFrame(b *testing.B, alg Algorithm, procs int) {
	b.Helper()
	r := NewMRIPhantom(64, Config{Algorithm: alg, Procs: procs})
	r.Render(30, 15) // warm the encoding cache
	var yaw float64 = 30
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yaw += 3
		r.Render(yaw, 15)
	}
}

func BenchmarkSerialFrame(b *testing.B)      { benchFrame(b, Serial, 1) }
func BenchmarkOldParallelFrame(b *testing.B) { benchFrame(b, OldParallel, 4) }
func BenchmarkRayCastFrame(b *testing.B)     { benchFrame(b, RayCast, 1) }

// BenchmarkNewParallelFrame drives the new algorithm's frame loop directly
// (below the public API, whose Image wrapper necessarily allocates). After
// a full warm-up rotation — so every principal axis has been encoded and
// every per-renderer buffer has reached its steady-state size — the loop
// must run at 0 allocs/op.
func BenchmarkNewParallelFrame(b *testing.B) {
	r := render.New(vol.MRIBrain(64), render.Options{PreprocProcs: 4})
	nr := newalg.NewRenderer(r, newalg.Config{Procs: 4})
	const step = 3 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	yaw := 30 * math.Pi / 180
	for i := 0; i < 130; i++ { // full rotation: warm all axes and buffers
		yaw += step
		nr.RenderFrame(yaw, pitch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yaw += step
		nr.RenderFrame(yaw, pitch)
	}
}

// BenchmarkNewParallelFramePerf is BenchmarkNewParallelFrame with the
// perf collector attached — the delta against the plain benchmark is the
// observability layer's overhead (guarded under 5% by
// TestPerfOverheadGuard).
func BenchmarkNewParallelFramePerf(b *testing.B) {
	r := render.New(vol.MRIBrain(64), render.Options{PreprocProcs: 4})
	nr := newalg.NewRenderer(r, newalg.Config{Procs: 4})
	nr.Perf = perf.NewCollector(4)
	const step = 3 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	yaw := 30 * math.Pi / 180
	for i := 0; i < 130; i++ { // full rotation: warm all axes and buffers
		yaw += step
		nr.RenderFrame(yaw, pitch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yaw += step
		nr.RenderFrame(yaw, pitch)
	}
}

// ---- render-mode benchmarks ----
//
// One frame benchmark per non-composite render mode, at both ends of the
// algorithm spectrum: the serial reference and the new algorithm's
// steady-state frame loop. The composite numbers above are the baseline;
// the deltas here are the real cost of the MIP max-kernel (no early
// termination, so every ray runs the full slice stack) and of the
// isosurface pipeline (ordinary compositing over a binary classification,
// so usually cheaper than composite: opaque surface voxels terminate rays
// immediately).

func benchFrameMode(b *testing.B, alg Algorithm, procs int, mode Mode) {
	b.Helper()
	r := NewMRIPhantom(64, Config{Algorithm: alg, Procs: procs, Mode: mode})
	r.Render(30, 15) // warm the encoding cache
	var yaw float64 = 30
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yaw += 3
		r.Render(yaw, 15)
	}
}

func BenchmarkSerialFrameMIP(b *testing.B) { benchFrameMode(b, Serial, 1, ModeMIP) }
func BenchmarkSerialFrameIso(b *testing.B) { benchFrameMode(b, Serial, 1, ModeIsosurface) }

// benchNewFrameMode is BenchmarkNewParallelFrame with explicit render
// options: full warm-up rotation, then the 0 allocs/op steady-state loop.
func benchNewFrameMode(b *testing.B, opt render.Options) {
	b.Helper()
	opt.PreprocProcs = 4
	r := render.New(vol.MRIBrain(64), opt)
	nr := newalg.NewRenderer(r, newalg.Config{Procs: 4})
	const step = 3 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	yaw := 30 * math.Pi / 180
	for i := 0; i < 130; i++ { // full rotation: warm all axes and buffers
		yaw += step
		nr.RenderFrame(yaw, pitch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yaw += step
		nr.RenderFrame(yaw, pitch)
	}
}

func BenchmarkNewParallelFrameMIP(b *testing.B) {
	benchNewFrameMode(b, render.Options{Mode: rendermode.MIP})
}

func BenchmarkNewParallelFrameIso(b *testing.B) {
	benchNewFrameMode(b, render.Options{Mode: rendermode.Isosurface,
		Transfer: classify.IsoTransfer(classify.DefaultIsoThreshold)})
}

// BenchmarkCompositePhaseOnly measures the compositing phase in isolation:
// one context over a fixed setup frame, all scanlines per iteration. The
// per-iteration Clear is part of a real frame's compositing cost and stays
// inside the timer (StopTimer at this frequency would distort the numbers).
func BenchmarkCompositePhaseOnly(b *testing.B) {
	r := render.New(vol.MRIBrain(64), render.Options{})
	fr := r.Setup(0.5, 0.25)
	cc := fr.NewCompositeCtx()
	var cnt composite.Counters
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.M.Clear()
		for row := 0; row < fr.M.H; row++ {
			cc.Scanline(row, &cnt)
		}
	}
}

// benchCompositeScanline measures the untraced compositing kernel on a
// single central intermediate scanline, for the given pixel-kernel tier.
func benchCompositeScanline(b *testing.B, k cpudispatch.Kernel) {
	b.Helper()
	r := render.New(vol.MRIBrain(64), render.Options{Kernel: k})
	fr := r.Setup(0.5, 0.25)
	cc := fr.NewCompositeCtx()
	row := fr.M.H / 2
	var cnt composite.Counters
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.M.ClearRow(row)
		cc.Scanline(row, &cnt)
	}
}

// BenchmarkCompositeScanline is the headline compositing benchmark and runs
// the packed tier — the fastest kernel this machine supports (the scalar
// twin below tracks the exact tier). BENCH_native.json records both.
func BenchmarkCompositeScanline(b *testing.B) {
	benchCompositeScanline(b, cpudispatch.KernelPacked)
}

// BenchmarkCompositeScanlineScalar is the exact scalar tier — the default
// kernel and the bit-identity reference for the golden suites.
func BenchmarkCompositeScanlineScalar(b *testing.B) {
	benchCompositeScanline(b, cpudispatch.KernelScalar)
}

// ---- skewed-workload kernel benchmarks ----
//
// The MRI phantom's central scanline is the balanced case; these phantoms
// stress the kernels' extreme run structures instead: scanlines with no
// work at all, scanlines where early termination kills the whole tail of
// the slice stack, and maximally fragmented 1-voxel runs where per-span
// overhead dominates per-sample cost.

// stepTransfer makes classification entirely density-driven: zero density
// is exactly transparent, anything else fully opaque. The skewed phantoms
// rely on it so their run structure is by construction, not an artifact of
// the MRI transfer ramp.
func stepTransfer(density uint8, _ float64) (alpha, r, g, bl float64) {
	if density == 0 {
		return 0, 0, 0, 0
	}
	return 1, 1, 0.9, 0.8
}

// benchSkewedScanline composites the central intermediate scanline of a
// synthetic phantom under the given kernel tier.
func benchSkewedScanline(b *testing.B, v *vol.Volume, k cpudispatch.Kernel) {
	b.Helper()
	r := render.New(v, render.Options{Transfer: stepTransfer, Kernel: k})
	fr := r.Setup(0.5, 0.25)
	cc := fr.NewCompositeCtx()
	row := fr.M.H / 2
	var cnt composite.Counters
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.M.ClearRow(row)
		cc.Scanline(row, &cnt)
	}
}

// volAllTransparent: every scanline is one transparent run — the kernel
// should do nothing but walk slice headers.
func volAllTransparent(n int) *vol.Volume { return vol.New(n, n, n) }

// volFullyOpaque: every voxel saturates immediately, so the first slice
// opacifies the whole row and every later slice exercises only the
// early-termination (opaque-pixel skip) path.
func volFullyOpaque(n int) *vol.Volume {
	v := vol.New(n, n, n)
	for i := range v.Data {
		v.Data[i] = 255
	}
	return v
}

// volOneVoxelRuns: a 3-D parity checkerboard — along any principal axis
// every run is exactly one voxel, the worst case for span bookkeeping.
func volOneVoxelRuns(n int) *vol.Volume {
	v := vol.New(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := (z + y) % 2; x < n; x += 2 {
				v.Set(x, y, z, 255)
			}
		}
	}
	return v
}

func BenchmarkCompositeTransparentScalar(b *testing.B) {
	benchSkewedScanline(b, volAllTransparent(64), cpudispatch.KernelScalar)
}
func BenchmarkCompositeTransparentPacked(b *testing.B) {
	benchSkewedScanline(b, volAllTransparent(64), cpudispatch.KernelPacked)
}
func BenchmarkCompositeOpaqueScalar(b *testing.B) {
	benchSkewedScanline(b, volFullyOpaque(64), cpudispatch.KernelScalar)
}
func BenchmarkCompositeOpaquePacked(b *testing.B) {
	benchSkewedScanline(b, volFullyOpaque(64), cpudispatch.KernelPacked)
}
func BenchmarkCompositeOneVoxelRunsScalar(b *testing.B) {
	benchSkewedScanline(b, volOneVoxelRuns(64), cpudispatch.KernelScalar)
}
func BenchmarkCompositeOneVoxelRunsPacked(b *testing.B) {
	benchSkewedScanline(b, volOneVoxelRuns(64), cpudispatch.KernelPacked)
}

// benchWarpSpan measures the untraced warp kernel on a single central
// final-image row over a fully composited intermediate image.
func benchWarpSpan(b *testing.B, k cpudispatch.Kernel) {
	b.Helper()
	r := render.New(vol.MRIBrain(64), render.Options{Kernel: k})
	fr := r.Setup(0.5, 0.25)
	cc := fr.NewCompositeCtx()
	var ccnt composite.Counters
	for row := 0; row < fr.M.H; row++ {
		cc.Scanline(row, &ccnt)
	}
	var scratch warp.Scratch
	wc := fr.NewWarpCtx(&scratch)
	y := fr.Out.H / 2
	var cnt warp.Counters
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wc.WarpSpan(y, 0, fr.Out.W, &cnt)
	}
}

func BenchmarkWarpSpan(b *testing.B)       { benchWarpSpan(b, cpudispatch.KernelScalar) }
func BenchmarkWarpSpanPacked(b *testing.B) { benchWarpSpan(b, cpudispatch.KernelPacked) }

// ---- per-figure benchmarks ----

// benchFigure runs one paper figure at the small scale and reports a named
// metric extracted from its tables.
func benchFigure(b *testing.B, id string, metric func([]figTable) (float64, string)) {
	b.Helper()
	f, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	var val float64
	var name string
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(experiments.Small)
		tables := f.Run(lab)
		ft := make([]figTable, len(tables))
		for j := range tables {
			ft[j] = figTable{rows: tables[j].Rows, cols: tables[j].Columns}
		}
		if metric != nil {
			val, name = metric(ft)
		}
	}
	if metric != nil {
		b.ReportMetric(val, name)
	}
}

type figTable struct {
	rows [][]string
	cols []string
}

// lastCellFloat parses the float in the last row at the given column
// offset from the end.
func lastCellFloat(t figTable, fromEnd int) float64 {
	row := t.rows[len(t.rows)-1]
	cell := strings.TrimSuffix(row[len(row)-1-fromEnd], "%")
	v, _ := strconv.ParseFloat(cell, 64)
	return v
}

func BenchmarkFig02(b *testing.B) {
	benchFigure(b, "fig2", func(ts []figTable) (float64, string) {
		rc, _ := strconv.ParseFloat(ts[0].rows[0][3], 64)
		sw, _ := strconv.ParseFloat(ts[0].rows[1][3], 64)
		return rc / sw, "raycast/shearwarp"
	})
}

func speedupMetric(name string) func([]figTable) (float64, string) {
	return func(ts []figTable) (float64, string) {
		return lastCellFloat(ts[0], 0), name
	}
}

func BenchmarkFig04(b *testing.B) { benchFigure(b, "fig4", speedupMetric("old-speedup-maxP")) }
func BenchmarkFig05(b *testing.B) { benchFigure(b, "fig5", nil) }
func BenchmarkFig06(b *testing.B) { benchFigure(b, "fig6", nil) }
func BenchmarkFig07(b *testing.B) {
	benchFigure(b, "fig7", func(ts []figTable) (float64, string) {
		// True-sharing misses per 1000 refs at max procs.
		row := ts[0].rows[len(ts[0].rows)-1]
		v, _ := strconv.ParseFloat(row[2], 64)
		return v, "old-trueshare-per-1k"
	})
}
func BenchmarkFig08(b *testing.B) { benchFigure(b, "fig8", nil) }
func BenchmarkFig09(b *testing.B) { benchFigure(b, "fig9", nil) }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10", nil) }
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12", speedupMetric("new-speedup-maxP")) }
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13", speedupMetric("new-speedup-maxP")) }
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14", nil) }
func BenchmarkFig15(b *testing.B) { benchFigure(b, "fig15", speedupMetric("new-ct-speedup-maxP")) }
func BenchmarkFig16(b *testing.B) {
	benchFigure(b, "fig16", func(ts []figTable) (float64, string) {
		row := ts[0].rows[len(ts[0].rows)-1]
		oldTS, _ := strconv.ParseFloat(row[2], 64)
		newTS, _ := strconv.ParseFloat(row[5], 64)
		if newTS == 0 {
			newTS = 0.01
		}
		return oldTS / newTS, "trueshare-reduction"
	})
}
func BenchmarkFig17(b *testing.B) { benchFigure(b, "fig17", nil) }
func BenchmarkFig18(b *testing.B) { benchFigure(b, "fig18", nil) }
func BenchmarkFig19(b *testing.B) { benchFigure(b, "fig19", speedupMetric("new-origin-speedup")) }
func BenchmarkFig20(b *testing.B) { benchFigure(b, "fig20", speedupMetric("new-svm-speedup")) }
func BenchmarkFig21(b *testing.B) { benchFigure(b, "fig21", nil) }
func BenchmarkFig22(b *testing.B) { benchFigure(b, "fig22", nil) }

// ---- ablation benchmarks ----

func BenchmarkAblChunk(b *testing.B)   { benchFigure(b, "abl-chunk", nil) }
func BenchmarkAblSteal(b *testing.B)   { benchFigure(b, "abl-steal", nil) }
func BenchmarkAblNoSteal(b *testing.B) { benchFigure(b, "abl-nosteal", nil) }
func BenchmarkAblProfile(b *testing.B) { benchFigure(b, "abl-profile", nil) }
func BenchmarkAblBarrier(b *testing.B) {
	benchFigure(b, "abl-barrier", func(ts []figTable) (float64, string) {
		// Barrier penalty at the largest processor count.
		row := ts[0].rows[len(ts[0].rows)-1]
		v, _ := strconv.ParseFloat(row[3], 64)
		return v, "barrier-penalty"
	})
}
func BenchmarkAblPlacement(b *testing.B) { benchFigure(b, "abl-placement", nil) }

func BenchmarkClassifyParallel4(b *testing.B) {
	v := vol.MRIBrain(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classify.ClassifyParallel(v, classify.Options{}, 4)
	}
}

func BenchmarkRLEEncodeParallel4(b *testing.B) {
	c := classify.Classify(vol.MRIBrain(64), classify.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rle.EncodeParallel(c, xform.AxisZ, 4)
	}
}

func BenchmarkAttr(b *testing.B) {
	benchFigure(b, "attr", func(ts []figTable) (float64, string) {
		// int.Pix true-sharing reduction (old/new).
		for _, row := range ts[0].rows {
			if row[0] == "int.Pix" {
				oldT, _ := strconv.ParseFloat(row[1], 64)
				newT, _ := strconv.ParseFloat(row[4], 64)
				if newT == 0 {
					newT = 1
				}
				return oldT / newT, "interface-trueshare-reduction"
			}
		}
		return 0, "interface-trueshare-reduction"
	})
}
