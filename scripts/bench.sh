#!/usr/bin/env bash
# bench.sh — run the native kernel and frame benchmarks and emit
# BENCH_native.json (plus benchstat-ready raw output in BENCH_native.txt),
# BENCH_phases.json (per-worker phase breakdowns of instrumented
# old/new-algorithm runs, so the perf trajectory records where frame time
# goes — busy vs. wait vs. imbalance — not just totals), and
# BENCH_latency.json (request-level latency quantiles — p50/p95/p99 per
# endpoint and per render phase — from a short load loop against a live
# shearwarpd, saved verbatim from its /debug/latency endpoint).
#
# A fourth artifact, BENCH_load.json, is the report of a short zipfian
# multi-tenant load replay (cmd/loadgen) against a live shearwarpd —
# achieved RPS, per-status counts, client-side latency quantiles, and
# the cache hit/miss/eviction delta the run caused.
#
# Usage:  scripts/bench.sh [count]      full run (benchmarks + load replay)
#         scripts/bench.sh load        load replay only, emits BENCH_load.json
#
#   count   repetitions per benchmark (default 5) — enough for benchstat
#           to report a confidence interval:
#               benchstat BENCH_native.txt
#
#   SHEARWARPD_PORT   port for the latency/load loops (default 18080)
#   LOADGEN_RPS       load replay target rate (default 15)
#   LOADGEN_DURATION  load replay length (default 10s)
#
# The JSON records the per-run ns/op samples, their mean, and allocation
# stats for each benchmark, alongside the frozen pre-PR baseline of the
# frame benchmarks so the kernel-optimization speedup
# (baseline mean / current mean) can be read off directly.
set -euo pipefail

MODE=all
if [ "${1:-}" = "load" ]; then
    MODE=load
    shift
fi
COUNT="${1:-5}"
REPO="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO"

PORT="${SHEARWARPD_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
SRV_PID=""
TMPFILES=()
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -f ${TMPFILES[@]+"${TMPFILES[@]}"}
}
trap cleanup EXIT

wait_ready() {
    for _ in $(seq 1 50); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "shearwarpd did not become ready on $BASE" >&2
    return 1
}

# load_replay: boot shearwarpd with extra synthetic tenants and replay a
# zipfian open-loop request stream through cmd/loadgen, saving its
# report (client latency quantiles + service cache delta) as
# BENCH_load.json.
load_replay() {
    local LOAD=BENCH_load.json
    local srv lg
    srv="$(mktemp)"; lg="$(mktemp)"
    TMPFILES+=("$srv" "$lg")
    echo "running zipfian load replay on $BASE..." >&2
    go build -o "$srv" ./cmd/shearwarpd
    go build -o "$lg" ./cmd/loadgen
    "$srv" -addr "127.0.0.1:$PORT" -size 32 -procs 4 -max-concurrent 4 -tenants 6 >/dev/null &
    SRV_PID=$!
    wait_ready
    "$lg" -url "$BASE" -rps "${LOADGEN_RPS:-15}" -duration "${LOADGEN_DURATION:-10s}" \
        -skew 1.3 -strict -out "$LOAD" >/dev/null
    kill "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
    SRV_PID=""
    echo "wrote $LOAD" >&2
}

if [ "$MODE" = "load" ]; then
    load_replay
    exit 0
fi

RAW=BENCH_native.txt
JSON=BENCH_native.json
PHASES=BENCH_phases.json
BENCHES='^(BenchmarkSerialFrame|BenchmarkOldParallelFrame|BenchmarkNewParallelFrame|BenchmarkNewParallelFramePerf|BenchmarkCompositePhaseOnly|BenchmarkCompositeScanline|BenchmarkCompositeScanlineScalar|BenchmarkCompositeTransparentScalar|BenchmarkCompositeTransparentPacked|BenchmarkCompositeOpaqueScalar|BenchmarkCompositeOpaquePacked|BenchmarkCompositeOneVoxelRunsScalar|BenchmarkCompositeOneVoxelRunsPacked|BenchmarkWarpSpan|BenchmarkWarpSpanPacked)$'

echo "running benchmarks (count=$COUNT)..." >&2
go test -run '^$' -bench "$BENCHES" -benchmem -count "$COUNT" . | tee "$RAW"

awk -v count="$COUNT" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
    n = 0
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    if (!(name in seen)) { seen[name] = 1; order[n++] = name }
    runs[name] = runs[name] (runs[name] ? ", " : "") $3
    sum[name] += $3
    cnt[name]++
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes[name]  = $(i-1)
        if ($i == "allocs/op") allocs[name] = $(i-1)
    }
}
END {
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"count\": %d,\n", count
    printf "  \"baseline\": {\n"
    printf "    \"note\": \"pre-PR frame benchmarks (before the untraced kernel split and zero-alloc frame loop), same machine, count=5\",\n"
    printf "    \"cpu\": \"Intel(R) Xeon(R) Processor @ 2.10GHz\",\n"
    printf "    \"benchmarks\": {\n"
    printf "      \"BenchmarkSerialFrame\": {\"runs_ns_op\": [1165674, 1074924, 1147793, 1255348, 1203546], \"mean_ns_op\": 1169457, \"bytes_op\": 160543, \"allocs_op\": 19},\n"
    printf "      \"BenchmarkOldParallelFrame\": {\"runs_ns_op\": [1197175, 1290986, 1177328, 1259052, 1179017], \"mean_ns_op\": 1220711, \"bytes_op\": 168141, \"allocs_op\": 65},\n"
    printf "      \"BenchmarkNewParallelFrame\": {\"runs_ns_op\": [1253647, 1257970, 1417226, 1316424, 1073361], \"mean_ns_op\": 1263725, \"bytes_op\": 167986, \"allocs_op\": 76}\n"
    printf "    }\n"
    printf "  },\n"
    printf "  \"benchmarks\": {\n"
    for (k = 0; k < n; k++) {
        name = order[k]
        printf "    \"%s\": {\"runs_ns_op\": [%s], \"mean_ns_op\": %.0f, \"bytes_op\": %s, \"allocs_op\": %s}%s\n", \
            name, runs[name], sum[name] / cnt[name], \
            (name in bytes ? bytes[name] : "null"), \
            (name in allocs ? allocs[name] : "null"), \
            (k < n - 1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' "$RAW" > "$JSON"

# Per-phase breakdowns: one instrumented animation run per parallel
# algorithm, same phantom and worker count as the frame benchmarks.
echo "collecting per-phase breakdowns..." >&2
PH_OLD="$(mktemp)"
PH_NEW="$(mktemp)"
SRV_BIN="$(mktemp)"
TMPFILES+=("$PH_OLD" "$PH_NEW" "$SRV_BIN")
go run ./cmd/shearwarp -kind mri -size 64 -alg old -procs 4 -frames 8 -statsjson "$PH_OLD" >/dev/null
go run ./cmd/shearwarp -kind mri -size 64 -alg new -procs 4 -frames 8 -statsjson "$PH_NEW" >/dev/null
{
    printf '{\n"generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '"note": "per-worker phase breakdowns (ns) of 8-frame instrumented runs; size 64, 4 workers",\n'
    printf '"old": '
    cat "$PH_OLD"
    printf ',\n"new": '
    cat "$PH_NEW"
    printf '}\n'
} > "$PHASES"

# Request-level latency digest: drive a short load loop through a live
# shearwarpd and save its /debug/latency quantile document verbatim —
# p50/p95/p99 per endpoint and per render phase.
LATENCY=BENCH_latency.json
echo "collecting request latency digest on $BASE..." >&2
go build -o "$SRV_BIN" ./cmd/shearwarpd
"$SRV_BIN" -addr "127.0.0.1:$PORT" -size 48 -procs 4 -max-concurrent 4 >/dev/null &
SRV_PID=$!
wait_ready

for i in $(seq 1 40); do
    curl -fsS "$BASE/render?volume=mri&yaw=$((i * 9))&pitch=15&alg=new" -o /dev/null
    curl -fsS "$BASE/render?volume=ct&yaw=$((i * 9))&pitch=10&alg=old" -o /dev/null
done
curl -fsS "$BASE/metrics" >/dev/null        # exercise the scrape path too
curl -fsS "$BASE/debug/latency" > "$LATENCY"
kill "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

load_replay

echo "wrote $RAW, $JSON, $PHASES, $LATENCY and BENCH_load.json" >&2
