#!/usr/bin/env bash
# bench_smoke.sh — fast benchmark regression gate.
#
# Runs the frame and kernel benchmarks once each with a short benchtime
# and compares every mean against the checked-in BENCH_native.json
# baseline, failing on any regression worse than the factor. One short
# run is noisy, so the factor is deliberately loose — this is a smoke
# gate catching order-of-magnitude mistakes (an accidental allocation in
# the frame loop, a kernel falling off its fast path), not a substitute
# for `scripts/bench.sh` + benchstat on a quiet machine.
#
# Usage:  scripts/bench_smoke.sh
#
#   BENCH_SMOKE_FACTOR   failure threshold vs baseline mean (default 2.0)
#   BENCH_SMOKE_TIME     -benchtime per benchmark (default 0.3s)
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO"

FACTOR="${BENCH_SMOKE_FACTOR:-2.0}"
BENCHES='^(BenchmarkSerialFrame|BenchmarkOldParallelFrame|BenchmarkNewParallelFrame|BenchmarkSerialFrameMIP|BenchmarkSerialFrameIso|BenchmarkNewParallelFrameMIP|BenchmarkNewParallelFrameIso|BenchmarkCompositePhaseOnly|BenchmarkCompositeScanline|BenchmarkCompositeScanlineScalar|BenchmarkWarpSpan|BenchmarkWarpSpanPacked)$'

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
go test -run '^$' -bench "$BENCHES" -benchtime "${BENCH_SMOKE_TIME:-0.3s}" . | tee "$OUT"

python3 - "$OUT" "$FACTOR" <<'EOF'
import json, re, sys

out, factor = sys.argv[1], float(sys.argv[2])
base = json.load(open("BENCH_native.json"))["benchmarks"]
cur = {}
for line in open(out):
    m = re.match(r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op", line)
    if m:
        cur.setdefault(m.group(1), []).append(float(m.group(2)))
if not cur:
    sys.exit("bench-smoke: no benchmark results parsed")

bad = []
for name in sorted(cur):
    if name not in base:
        print(f"bench-smoke: {name}: no baseline in BENCH_native.json, skipped")
        continue
    mean = sum(cur[name]) / len(cur[name])
    ref = base[name]["mean_ns_op"]
    ratio = mean / ref
    verdict = "FAIL" if ratio > factor else "ok"
    print(f"bench-smoke: {name}: {mean:.0f} ns/op vs baseline {ref} ({ratio:.2f}x) {verdict}")
    if ratio > factor:
        bad.append(name)
if bad:
    sys.exit(f"bench-smoke: >{factor}x regression vs baseline in: {', '.join(bad)}")
print(f"bench-smoke: all benchmarks within {factor}x of baseline")
EOF
