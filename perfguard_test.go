package shearwarp

// The observability overhead guard: attaching a perf.Collector or a
// telemetry.FrameSpans recorder must cost under 5% on the new
// algorithm's frame loop, and the disabled (nil collector, nil recorder)
// path must stay exactly as it was — 0 allocs/op in steady state and
// byte-identical output. This is the contract that lets the breakdown
// and span-trace layers stay compiled into the production render path.

import (
	"bytes"
	"math"
	"os"
	"testing"
	"time"

	"shearwarp/internal/classify"
	"shearwarp/internal/cpudispatch"
	"shearwarp/internal/newalg"
	"shearwarp/internal/perf"
	"shearwarp/internal/render"
	"shearwarp/internal/rendermode"
	"shearwarp/internal/telemetry"
	"shearwarp/internal/vol"
)

// warmRenderer builds a new-algorithm renderer and drives it through a
// full rotation so every axis encoding and per-renderer buffer reaches
// steady state.
func warmRenderer(pc *perf.Collector) *newalg.Renderer {
	return warmKernelRenderer(pc, cpudispatch.KernelScalar)
}

// warmKernelRenderer is warmRenderer with an explicit pixel-kernel tier.
func warmKernelRenderer(pc *perf.Collector, k cpudispatch.Kernel) *newalg.Renderer {
	return warmOptionsRenderer(pc, render.Options{PreprocProcs: 4, Kernel: k})
}

// warmOptionsRenderer is the general warm-up: any render.Options, full
// rotation, steady-state buffers.
func warmOptionsRenderer(pc *perf.Collector, opt render.Options) *newalg.Renderer {
	r := render.New(vol.MRIBrain(48), opt)
	nr := newalg.NewRenderer(r, newalg.Config{Procs: 4})
	nr.Perf = pc
	const step = 3 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	yaw := 30 * math.Pi / 180
	for i := 0; i < 130; i++ {
		yaw += step
		nr.RenderFrame(yaw, pitch)
	}
	return nr
}

func TestPerfDisabledZeroAllocs(t *testing.T) {
	nr := warmRenderer(nil)
	yaw := 77 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	allocs := testing.AllocsPerRun(20, func() {
		yaw += 3 * math.Pi / 180
		nr.RenderFrame(yaw, pitch)
	})
	if allocs != 0 {
		t.Fatalf("disabled collector: RenderFrame allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestPerfEnabledSteadyStateZeroAllocs(t *testing.T) {
	// The collector itself is allocation-free per frame once its slots
	// exist: Reset reuses them and AddPhase/AddCount write in place.
	nr := warmRenderer(perf.NewCollector(4))
	yaw := 77 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	allocs := testing.AllocsPerRun(20, func() {
		yaw += 3 * math.Pi / 180
		nr.RenderFrame(yaw, pitch)
	})
	if allocs != 0 {
		t.Fatalf("enabled collector: RenderFrame allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestPerfDisabledByteIdentical(t *testing.T) {
	plain := warmRenderer(nil)
	inst := warmRenderer(perf.NewCollector(4))
	pitch := 15 * math.Pi / 180
	for _, yawDeg := range []float64{30, 77, 141, 260} {
		yaw := yawDeg * math.Pi / 180
		a := plain.RenderFrame(yaw, pitch).Out
		b := inst.RenderFrame(yaw, pitch).Out
		if a.W != b.W || a.H != b.H {
			t.Fatalf("yaw %v: sizes differ (%dx%d vs %dx%d)", yawDeg, a.W, a.H, b.W, b.H)
		}
		if !bytes.Equal(a.Pix, b.Pix) {
			t.Fatalf("yaw %v: instrumented frame differs from plain frame", yawDeg)
		}
		fb := inst.Perf.Breakdown("new")
		if fb.WallNS <= 0 {
			t.Fatalf("yaw %v: collector recorded no wall time", yawDeg)
		}
	}
}

// TestSpansDetachedZeroAllocs checks that a renderer that once carried a
// span recorder returns to the pristine disabled path after detaching:
// 0 allocs/op, like a renderer that was never traced.
func TestSpansDetachedZeroAllocs(t *testing.T) {
	nr := warmRenderer(nil)
	fs := telemetry.NewFrameSpans(time.Now())
	nr.Spans = fs
	yaw := 50 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	nr.RenderFrame(yaw, pitch)
	if len(fs.Spans()) == 0 {
		t.Fatal("attached recorder captured no spans")
	}
	nr.Spans = nil
	allocs := testing.AllocsPerRun(20, func() {
		yaw += 3 * math.Pi / 180
		nr.RenderFrame(yaw, pitch)
	})
	if allocs != 0 {
		t.Fatalf("detached recorder: RenderFrame allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSpansAttachedSteadyStateZeroAllocs: recording spans is index-claim
// plus in-place writes into the preallocated buffer — no allocation.
func TestSpansAttachedSteadyStateZeroAllocs(t *testing.T) {
	nr := warmRenderer(nil)
	fs := telemetry.NewFrameSpans(time.Now())
	epoch := time.Now()
	nr.Spans = fs
	yaw := 50 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	allocs := testing.AllocsPerRun(20, func() {
		fs.Reset(epoch)
		yaw += 3 * math.Pi / 180
		nr.RenderFrame(yaw, pitch)
	})
	if allocs != 0 {
		t.Fatalf("attached recorder: RenderFrame allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSpansByteIdentical: tracing a frame must not change its pixels —
// attached, detached-after-attach, and never-attached renderers all
// produce byte-identical output, and the traced frames carry the
// expected per-worker span names.
func TestSpansByteIdentical(t *testing.T) {
	plain := warmRenderer(nil)
	traced := warmRenderer(nil)
	fs := telemetry.NewFrameSpans(time.Now())
	epoch := time.Now()
	traced.Spans = fs
	pitch := 15 * math.Pi / 180
	for _, yawDeg := range []float64{30, 77, 141, 260} {
		fs.Reset(epoch)
		yaw := yawDeg * math.Pi / 180
		a := plain.RenderFrame(yaw, pitch).Out
		b := traced.RenderFrame(yaw, pitch).Out
		if a.W != b.W || a.H != b.H || !bytes.Equal(a.Pix, b.Pix) {
			t.Fatalf("yaw %v: traced frame differs from plain frame", yawDeg)
		}
		names := map[string]bool{}
		for _, sp := range fs.Spans() {
			names[sp.Name] = true
		}
		for _, want := range []string{"setup", "clear", "composite-own", "warp"} {
			if !names[want] {
				t.Fatalf("yaw %v: no %q span recorded; have %v", yawDeg, want, names)
			}
		}
	}
	// Detached again, the output still matches.
	traced.Spans = nil
	yaw := 200 * math.Pi / 180
	a := plain.RenderFrame(yaw, pitch).Out
	b := traced.RenderFrame(yaw, pitch).Out
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("detached renderer diverged from plain renderer")
	}
}

// TestPackedKernelZeroAllocs: the packed pixel-kernel tier must preserve
// the frame loop's steady-state allocation contract — its row cache and
// lane buffers live in pooled scratch that reaches fixed size during
// warm-up, so switching tiers cannot reintroduce per-frame garbage.
func TestPackedKernelZeroAllocs(t *testing.T) {
	nr := warmKernelRenderer(nil, cpudispatch.KernelPacked)
	yaw := 77 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	allocs := testing.AllocsPerRun(20, func() {
		yaw += 3 * math.Pi / 180
		nr.RenderFrame(yaw, pitch)
	})
	if allocs != 0 {
		t.Fatalf("packed kernel: RenderFrame allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestPackedKernelSpansByteIdentical: attaching a span recorder to a
// packed-kernel renderer must not change its pixels — the tracer hooks
// sit outside the pixel kernels, so the byte-identity guarantee holds
// per tier, not just for the default one.
func TestPackedKernelSpansByteIdentical(t *testing.T) {
	plain := warmKernelRenderer(nil, cpudispatch.KernelPacked)
	traced := warmKernelRenderer(nil, cpudispatch.KernelPacked)
	fs := telemetry.NewFrameSpans(time.Now())
	epoch := time.Now()
	traced.Spans = fs
	pitch := 15 * math.Pi / 180
	for _, yawDeg := range []float64{30, 77, 141, 260} {
		fs.Reset(epoch)
		yaw := yawDeg * math.Pi / 180
		a := plain.RenderFrame(yaw, pitch).Out
		b := traced.RenderFrame(yaw, pitch).Out
		if a.W != b.W || a.H != b.H || !bytes.Equal(a.Pix, b.Pix) {
			t.Fatalf("yaw %v: traced packed frame differs from plain packed frame", yawDeg)
		}
		if len(fs.Spans()) == 0 {
			t.Fatalf("yaw %v: attached recorder captured no spans", yawDeg)
		}
	}
}

// TestModeZeroAllocs extends the steady-state allocation contract across
// the render-mode axis: the MIP max-kernel and the isosurface pipeline
// (ordinary compositing over a binary classification) reuse the same
// pooled scratch as the composite path, so no mode may reintroduce
// per-frame garbage.
func TestModeZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  render.Options
	}{
		{"mip", render.Options{PreprocProcs: 4, Mode: rendermode.MIP}},
		{"iso", render.Options{PreprocProcs: 4, Mode: rendermode.Isosurface,
			Transfer: classify.IsoTransfer(classify.DefaultIsoThreshold)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nr := warmOptionsRenderer(nil, tc.opt)
			yaw := 77 * math.Pi / 180
			pitch := 15 * math.Pi / 180
			allocs := testing.AllocsPerRun(20, func() {
				yaw += 3 * math.Pi / 180
				nr.RenderFrame(yaw, pitch)
			})
			if allocs != 0 {
				t.Fatalf("%s mode: RenderFrame allocates %.1f allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

// TestExemplarPathZeroAllocs extends the zero-allocation contract to
// the request-latency exemplar path: ObserveExemplarNS must not
// allocate with the store disabled (where it degrades to ObserveNS
// behind a nil check) nor enabled (where capture is a fixed-array
// seqlock write).
func TestExemplarPathZeroAllocs(t *testing.T) {
	plain := telemetry.NewHistogram("guard_plain_seconds", "")
	enabled := telemetry.NewHistogram("guard_exemplar_seconds", "")
	enabled.EnableExemplars()
	var v int64 = 1
	allocs := testing.AllocsPerRun(1000, func() {
		v += 977
		plain.ObserveExemplarNS(v, uint64(v))
	})
	if allocs != 0 {
		t.Fatalf("disabled exemplar store: ObserveExemplarNS allocates %.1f allocs/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		v += 977
		enabled.ObserveExemplarNS(v, uint64(v))
	})
	if allocs != 0 {
		t.Fatalf("enabled exemplar store: ObserveExemplarNS allocates %.1f allocs/op, want 0", allocs)
	}
	if len(enabled.Exemplars()) == 0 {
		t.Fatal("enabled store retained no exemplars")
	}
}

// TestExemplarObserveOverheadGuard bounds the per-request cost of
// exemplar-enabled latency observation. The service observes once per
// HTTP request against frames that render in milliseconds, so the 5%
// instrumentation budget translates to "an observation must stay in the
// nanosecond noise floor"; 2µs is three orders of magnitude inside the
// budget while still catching a regression that adds locking or
// allocation to the capture path.
func TestExemplarObserveOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	bench := func(h *telemetry.Histogram) float64 {
		var v int64 = 1
		best := math.MaxFloat64
		for run := 0; run < 3; run++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					v += 977
					h.ObserveExemplarNS(v, uint64(v))
				}
			})
			if ns := float64(res.NsPerOp()); ns < best {
				best = ns
			}
		}
		return best
	}
	plain := telemetry.NewHistogram("guard_overhead_plain_seconds", "")
	enabled := telemetry.NewHistogram("guard_overhead_exemplar_seconds", "")
	enabled.EnableExemplars()
	base := bench(plain)
	withCapture := bench(enabled)
	t.Logf("observe: disabled store %.1f ns/op, enabled store %.1f ns/op", base, withCapture)
	const limitNS = 2000
	if withCapture > limitNS {
		t.Fatalf("exemplar-enabled observation costs %.0f ns/op, budget %d ns", withCapture, limitNS)
	}
}

// TestPerfOverheadGuard benchmarks the frame loop with instrumentation
// off, with the collector on, and with collector plus span recorder on
// (the fully traced render-service configuration), asserting each
// enabled mode stays under 5% overhead. Timing ratios are noisy on
// loaded CI machines, so each side takes the best of three benchmark
// runs and the comparison retries before failing; set
// PERF_GUARD_STRICT=1 to fail on the first miss instead.
func TestPerfOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	bench := func(pc *perf.Collector, withSpans bool) float64 {
		nr := warmRenderer(pc)
		var fs *telemetry.FrameSpans
		epoch := time.Now()
		if withSpans {
			fs = telemetry.NewFrameSpans(epoch)
			nr.Spans = fs
		}
		yaw := 77 * math.Pi / 180
		pitch := 15 * math.Pi / 180
		best := math.MaxFloat64
		for run := 0; run < 3; run++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if fs != nil {
						fs.Reset(epoch)
					}
					yaw += 3 * math.Pi / 180
					nr.RenderFrame(yaw, pitch)
				}
			})
			if v := float64(res.NsPerOp()); v < best {
				best = v
			}
		}
		return best
	}

	const limit = 1.05
	attempts := 3
	if os.Getenv("PERF_GUARD_STRICT") != "" {
		attempts = 1
	}
	var perfRatio, traceRatio float64
	for a := 0; a < attempts; a++ {
		disabled := bench(nil, false)
		enabled := bench(perf.NewCollector(4), false)
		traced := bench(perf.NewCollector(4), true)
		perfRatio = enabled / disabled
		traceRatio = traced / disabled
		t.Logf("attempt %d: disabled %.0f ns/op, collector %.0f ns/op (%.3f), collector+spans %.0f ns/op (%.3f)",
			a, disabled, enabled, perfRatio, traced, traceRatio)
		if perfRatio < limit && traceRatio < limit {
			return
		}
	}
	t.Fatalf("instrumentation over budget: collector %.1f%%, collector+spans %.1f%% (budget %.0f%%)",
		100*(perfRatio-1), 100*(traceRatio-1), 100*(limit-1))
}
