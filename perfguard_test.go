package shearwarp

// The observability overhead guard: attaching a perf.Collector must cost
// under 5% on the new algorithm's frame loop, and the disabled (nil
// collector) path must stay exactly as it was — 0 allocs/op in steady
// state and byte-identical output. This is the contract that lets the
// breakdown layer stay compiled into the production render path.

import (
	"bytes"
	"math"
	"os"
	"testing"

	"shearwarp/internal/newalg"
	"shearwarp/internal/perf"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

// warmRenderer builds a new-algorithm renderer and drives it through a
// full rotation so every axis encoding and per-renderer buffer reaches
// steady state.
func warmRenderer(pc *perf.Collector) *newalg.Renderer {
	r := render.New(vol.MRIBrain(48), render.Options{PreprocProcs: 4})
	nr := newalg.NewRenderer(r, newalg.Config{Procs: 4})
	nr.Perf = pc
	const step = 3 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	yaw := 30 * math.Pi / 180
	for i := 0; i < 130; i++ {
		yaw += step
		nr.RenderFrame(yaw, pitch)
	}
	return nr
}

func TestPerfDisabledZeroAllocs(t *testing.T) {
	nr := warmRenderer(nil)
	yaw := 77 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	allocs := testing.AllocsPerRun(20, func() {
		yaw += 3 * math.Pi / 180
		nr.RenderFrame(yaw, pitch)
	})
	if allocs != 0 {
		t.Fatalf("disabled collector: RenderFrame allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestPerfEnabledSteadyStateZeroAllocs(t *testing.T) {
	// The collector itself is allocation-free per frame once its slots
	// exist: Reset reuses them and AddPhase/AddCount write in place.
	nr := warmRenderer(perf.NewCollector(4))
	yaw := 77 * math.Pi / 180
	pitch := 15 * math.Pi / 180
	allocs := testing.AllocsPerRun(20, func() {
		yaw += 3 * math.Pi / 180
		nr.RenderFrame(yaw, pitch)
	})
	if allocs != 0 {
		t.Fatalf("enabled collector: RenderFrame allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestPerfDisabledByteIdentical(t *testing.T) {
	plain := warmRenderer(nil)
	inst := warmRenderer(perf.NewCollector(4))
	pitch := 15 * math.Pi / 180
	for _, yawDeg := range []float64{30, 77, 141, 260} {
		yaw := yawDeg * math.Pi / 180
		a := plain.RenderFrame(yaw, pitch).Out
		b := inst.RenderFrame(yaw, pitch).Out
		if a.W != b.W || a.H != b.H {
			t.Fatalf("yaw %v: sizes differ (%dx%d vs %dx%d)", yawDeg, a.W, a.H, b.W, b.H)
		}
		if !bytes.Equal(a.Pix, b.Pix) {
			t.Fatalf("yaw %v: instrumented frame differs from plain frame", yawDeg)
		}
		fb := inst.Perf.Breakdown("new")
		if fb.WallNS <= 0 {
			t.Fatalf("yaw %v: collector recorded no wall time", yawDeg)
		}
	}
}

// TestPerfOverheadGuard benchmarks the frame loop with and without the
// collector and asserts the enabled overhead stays under 5%. Timing
// ratios are noisy on loaded CI machines, so each side takes the best of
// three benchmark runs and the comparison retries before failing; set
// PERF_GUARD_STRICT=1 to fail on the first miss instead.
func TestPerfOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	bench := func(pc *perf.Collector) float64 {
		nr := warmRenderer(pc)
		yaw := 77 * math.Pi / 180
		pitch := 15 * math.Pi / 180
		best := math.MaxFloat64
		for run := 0; run < 3; run++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					yaw += 3 * math.Pi / 180
					nr.RenderFrame(yaw, pitch)
				}
			})
			if v := float64(res.NsPerOp()); v < best {
				best = v
			}
		}
		return best
	}

	const limit = 1.05
	attempts := 3
	if os.Getenv("PERF_GUARD_STRICT") != "" {
		attempts = 1
	}
	var ratio float64
	for a := 0; a < attempts; a++ {
		disabled := bench(nil)
		enabled := bench(perf.NewCollector(4))
		ratio = enabled / disabled
		t.Logf("attempt %d: disabled %.0f ns/op, enabled %.0f ns/op, ratio %.3f", a, disabled, enabled, ratio)
		if ratio < limit {
			return
		}
	}
	t.Fatalf("enabled collector costs %.1f%% (> %.0f%% budget) on the frame loop",
		100*(ratio-1), 100*(limit-1))
}
