// Quickstart: render one frame of the synthetic MRI head phantom with the
// paper's new parallel shear-warp algorithm and save it as a PPM image.
package main

import (
	"fmt"
	"log"
	"os"

	"shearwarp"
)

func main() {
	// A 96^3-class phantom renders in well under a second.
	r := shearwarp.NewMRIPhantom(96, shearwarp.Config{
		Algorithm: shearwarp.NewParallel,
		Procs:     4,
	})

	im, info := r.Render(30 /* yaw deg */, 15 /* pitch deg */)

	fmt.Printf("rendered %dx%d pixels (intermediate image %dx%d)\n",
		im.Width(), im.Height(), info.IntW, info.IntH)
	fmt.Printf("composited %d samples across %d scanlines; %.0f%% of voxels transparent\n",
		info.Samples, info.Scanlines, 100*info.Transparent)

	f, err := os.Create("quickstart.ppm")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := im.WritePPM(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.ppm")
}
