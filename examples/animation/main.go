// Animation: the workload the paper optimizes for — a rotating sequence of
// frames with small angles between successive viewpoints. The new
// algorithm's cost profiles stay predictive across frames, so it
// re-profiles only every ~15 degrees (watch the "profiled" column), and
// the per-frame statistics show the steady-state behaviour a real-time
// renderer would see.
package main

import (
	"fmt"
	"time"

	"shearwarp"
)

func main() {
	r := shearwarp.NewMRIPhantom(64, shearwarp.Config{
		Algorithm: shearwarp.NewParallel,
		Procs:     4,
	})

	const frames = 24
	const stepDeg = 5.0

	fmt.Println("frame   yaw  profiled  steals   samples  render time")
	start := time.Now()
	profiled := 0
	for i := 0; i < frames; i++ {
		yaw := 20 + float64(i)*stepDeg
		t0 := time.Now()
		_, info := r.Render(yaw, 12)
		if info.Profiled {
			profiled++
		}
		fmt.Printf("%5d  %5.1f  %8v  %6d  %8d  %10s\n",
			i, yaw, info.Profiled, info.Steals, info.Samples,
			time.Since(t0).Round(10*time.Microsecond))
	}
	elapsed := time.Since(start)
	fmt.Printf("\n%d frames in %v — %.1f frames/second on this host\n",
		frames, elapsed.Round(time.Millisecond), float64(frames)/elapsed.Seconds())
	fmt.Printf("profiled %d of %d frames (every ~15 degrees of rotation, as in section 4.2)\n",
		profiled, frames)
}
