// Platforms: run the old and new parallel shear warpers on every simulated
// shared-address-space platform the paper evaluates — DASH, Challenge, the
// directory-protocol Simulator, the Origin2000, and the page-based SVM
// system — and print the steady-state per-frame comparison. This is the
// paper's headline result in one table: the new algorithm wins everywhere,
// and the gap widens as communication gets more expensive.
package main

import (
	"fmt"

	"shearwarp/internal/machines"
	"shearwarp/internal/render"
	"shearwarp/internal/simrun"
	"shearwarp/internal/vol"
)

func main() {
	const size, procs = 48, 16
	fmt.Printf("MRI %d phantom, %d processors, steady-state cycles per frame\n\n", size, procs)

	r := render.New(vol.MRIBrain(size), render.Options{})
	w := simrun.NewWorkload(r, render.Rotation(4, 0.3, 0.2, 5))

	fmt.Println("platform     old cycles   new cycles   new/old   old true-share   new true-share")
	for _, m := range machines.All() {
		p := min(procs, m.MaxProcs)
		old := simrun.RunOld(w, simrun.OldOptions{Machine: m, Procs: p})
		nw := simrun.RunNew(w, simrun.NewOptions{Machine: m, Procs: p})
		fmt.Printf("%-11s  %10d   %10d   %7.2f   %14d   %14d\n",
			m.Name, old.SteadyCycles(), nw.SteadyCycles(),
			float64(nw.SteadyCycles())/float64(old.SteadyCycles()),
			old.Mem.Misses[2], nw.Mem.Misses[2]) // 2 = memsim.TrueSharing
	}

	old := simrun.RunOldSVM(w, simrun.SVMOptions{Procs: procs})
	nw := simrun.RunNewSVM(w, simrun.SVMOptions{Procs: procs})
	fmt.Printf("%-11s  %10d   %10d   %7.2f   %11d pg   %11d pg\n",
		"SVM", old.SteadyCycles(), nw.SteadyCycles(),
		float64(nw.SteadyCycles())/float64(old.SteadyCycles()),
		old.Svm.ReadFaults+old.Svm.DirtyFaults, nw.Svm.ReadFaults+nw.Svm.DirtyFaults)

	fmt.Println("\n(new/old < 1 means the new algorithm is faster; the improvement is")
	fmt.Println(" largest where communication is most expensive, as the paper reports)")
}
