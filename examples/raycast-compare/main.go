// Raycast-compare: the Figure 2 experiment as a runnable program. Renders
// the same classified volume with the ray-casting baseline and the shear
// warper and breaks the modeled serial time into "looping" (control,
// addressing, coherence-structure traversal) and compositing/resampling
// work. Both perform nearly the same number of compositing operations; the
// shear warper wins because it loops far less.
package main

import (
	"fmt"

	"shearwarp"
)

func main() {
	const size = 64
	views := [][2]float64{{20, 10}, {50, 15}, {80, -10}}

	sw := shearwarp.NewMRIPhantom(size, shearwarp.Config{Algorithm: shearwarp.Serial})
	rc := shearwarp.NewMRIPhantom(size, shearwarp.Config{Algorithm: shearwarp.RayCast})

	fmt.Printf("MRI %d phantom, %d viewpoints, modeled serial cycles\n\n", size, len(views))
	fmt.Println("view       shear-warp      ray-cast   ratio   sw samples   rc samples")
	var swTotal, rcTotal int64
	for _, v := range views {
		_, swInfo := sw.Render(v[0], v[1])
		_, rcInfo := rc.Render(v[0], v[1])
		swTotal += swInfo.Cycles
		rcTotal += rcInfo.Cycles
		fmt.Printf("%3.0f/%-3.0f  %12d  %12d  %6.2f  %11d  %11d\n",
			v[0], v[1], swInfo.Cycles, rcInfo.Cycles,
			float64(rcInfo.Cycles)/float64(swInfo.Cycles),
			swInfo.Samples, rcInfo.Samples)
	}
	fmt.Printf("\noverall: the shear warper is %.1fx faster (the paper reports 4-7x)\n",
		float64(rcTotal)/float64(swTotal))
}
