package shearwarp

import (
	"errors"
	"testing"
)

func TestParseKernelRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kernel
	}{
		{"", KernelAuto},
		{"auto", KernelAuto},
		{"scalar", KernelScalar},
		{"packed", KernelPacked},
	} {
		k, err := ParseKernel(tc.in)
		if err != nil || k != tc.want {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v, nil", tc.in, k, err, tc.want)
		}
	}
	for _, k := range []Kernel{KernelAuto, KernelScalar, KernelPacked} {
		name := k.String()
		back, err := ParseKernel(name)
		if err != nil || back != k {
			t.Errorf("ParseKernel(%v.String()=%q) = %v, %v; want the original", k, name, back, err)
		}
	}
}

func TestParseKernelTypedError(t *testing.T) {
	_, err := ParseKernel("avx512")
	if err == nil {
		t.Fatal("ParseKernel accepted an unknown kernel")
	}
	var ke *UnknownKernelError
	if !errors.As(err, &ke) {
		t.Fatalf("error %T is not *UnknownKernelError", err)
	}
	if ke.Value != "avx512" {
		t.Fatalf("UnknownKernelError.Value = %q, want %q", ke.Value, "avx512")
	}
}

// TestKernelRoundTripsToRenderer pins that the configured tier reaches the
// renderer (resolved, never auto) and that each tier actually renders.
func TestKernelRoundTripsToRenderer(t *testing.T) {
	for _, tc := range []struct {
		cfg  Kernel
		want Kernel
	}{
		{KernelAuto, KernelScalar}, // auto resolves to the exact tier
		{KernelScalar, KernelScalar},
		{KernelPacked, KernelPacked},
	} {
		r := NewMRIPhantom(24, Config{Algorithm: Serial, Kernel: tc.cfg})
		if got := r.Kernel(); got != tc.want {
			t.Errorf("Config.Kernel=%v: Renderer.Kernel() = %v, want %v", tc.cfg, got, tc.want)
		}
		im, _ := r.Render(30, 15)
		if im.NonBlackPixels() == 0 {
			t.Errorf("Config.Kernel=%v: rendered image is all black", tc.cfg)
		}
	}
}

// TestPackedKernelCloseToScalarEndToEnd bounds the packed tier's epsilon
// over the whole pipeline (packed composite + packed warp vs the exact
// scalar frame) and checks every parallel algorithm agrees with the
// packed serial frame bit-for-bit — the cross-algorithm identity contract
// holds within a tier, not just for the default one.
func TestPackedKernelCloseToScalarEndToEnd(t *testing.T) {
	const n, yaw, pitch = 32, 25, -10
	scalar := NewMRIPhantom(n, Config{Algorithm: Serial})
	sIm, _ := scalar.Render(yaw, pitch)
	packed := NewMRIPhantom(n, Config{Algorithm: Serial, Kernel: KernelPacked})
	pIm, _ := packed.Render(yaw, pitch)

	if sIm.Width() != pIm.Width() || sIm.Height() != pIm.Height() {
		t.Fatalf("dims differ: %dx%d vs %dx%d", sIm.Width(), sIm.Height(), pIm.Width(), pIm.Height())
	}
	const tol = 6 // composite quantization + warp weight quantization, in 8-bit LSB
	worst := 0
	for y := 0; y < sIm.Height(); y++ {
		for x := 0; x < sIm.Width(); x++ {
			sr, sg, sb := sIm.At(x, y)
			pr, pg, pb := pIm.At(x, y)
			for _, d := range []int{int(sr) - int(pr), int(sg) - int(pg), int(sb) - int(pb)} {
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
	}
	if worst > tol {
		t.Fatalf("packed frame deviates from scalar by %d > %d LSB", worst, tol)
	}

	for _, alg := range []Algorithm{OldParallel, NewParallel} {
		r := NewMRIPhantom(n, Config{Algorithm: alg, Kernel: KernelPacked, Procs: 3})
		im, _ := r.Render(yaw, pitch)
		r.Close()
		for y := 0; y < im.Height(); y++ {
			for x := 0; x < im.Width(); x++ {
				pr, pg, pb := pIm.At(x, y)
				ar, ag, ab := im.At(x, y)
				if pr != ar || pg != ag || pb != ab {
					t.Fatalf("%v packed frame differs from serial packed at (%d,%d): (%d,%d,%d) vs (%d,%d,%d)",
						alg, x, y, ar, ag, ab, pr, pg, pb)
				}
			}
		}
	}
}
