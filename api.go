// Package shearwarp is a parallel volume renderer based on the shear-warp
// factorization, reproducing Jiang & Singh, "Improving Parallel Shear-Warp
// Volume Rendering on Shared Address Space Multiprocessors" (PPOPP 1997).
//
// The package renders 3-D scalar volumes by factoring the viewing
// transformation into a shear (composited over a run-length-encoded volume
// with early ray termination) and a 2-D warp. Three renderers are
// provided:
//
//   - Serial: the sequential shear warper (Lacroute's algorithm).
//   - OldParallel: the original parallel algorithm — interleaved chunks of
//     intermediate-image scanlines with task stealing, a barrier, and
//     round-robin final-image tiles.
//   - NewParallel: the paper's algorithm — contiguous, profile-balanced
//     partitions of the intermediate image used identically by both
//     phases, with chunked stealing and no inter-phase barrier.
//
// All three produce bit-identical images. A ray-casting baseline, a
// multiprocessor cache/directory simulator, an SVM (shared virtual memory)
// simulator, and a harness regenerating every figure of the paper's
// evaluation live under internal/ and are reachable through RunFigure.
package shearwarp

import (
	"context"
	"fmt"
	"io"
	"math"

	"shearwarp/internal/classify"
	"shearwarp/internal/cpudispatch"
	"shearwarp/internal/experiments"
	"shearwarp/internal/faultinject"
	"shearwarp/internal/img"
	"shearwarp/internal/newalg"
	"shearwarp/internal/oldalg"
	"shearwarp/internal/perf"
	"shearwarp/internal/raycast"
	"shearwarp/internal/render"
	"shearwarp/internal/rendermode"
	"shearwarp/internal/telemetry"
	"shearwarp/internal/vol"
	"shearwarp/internal/xform"
)

// Algorithm selects a rendering strategy.
type Algorithm int

// Rendering strategies.
const (
	Serial Algorithm = iota
	OldParallel
	NewParallel
	RayCast // the image-order baseline, for comparison
)

func (a Algorithm) String() string {
	switch a {
	case Serial:
		return "serial"
	case OldParallel:
		return "old"
	case NewParallel:
		return "new"
	case RayCast:
		return "raycast"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm converts a name ("serial", "old", "new", "raycast").
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "serial":
		return Serial, nil
	case "old":
		return OldParallel, nil
	case "new":
		return NewParallel, nil
	case "raycast":
		return RayCast, nil
	}
	return 0, fmt.Errorf("shearwarp: unknown algorithm %q", s)
}

// Kernel selects the pixel-kernel tier the untraced compositing and warp
// fast paths run with. The constants mirror internal/cpudispatch one to
// one (the conversions in this file rely on the shared numbering).
type Kernel int

// Kernel tiers.
const (
	// KernelAuto resolves via the SHEARWARP_KERNEL environment variable
	// and otherwise picks KernelScalar — the default, because the scalar
	// tier is the one that is bit-identical across every algorithm.
	KernelAuto Kernel = iota
	// KernelScalar is the exact float32 reference tier.
	KernelScalar
	// KernelPacked is the 64-bit packed-lane fixed-point tier: faster,
	// deterministic, but a documented epsilon mode — images agree with
	// the scalar tier only to within the quantization bounds pinned in
	// DESIGN.md, so it must be opted into explicitly.
	KernelPacked
)

func (k Kernel) String() string { return cpudispatch.Kernel(k).String() }

// UnknownKernelError reports a kernel name that ParseKernel rejected.
type UnknownKernelError struct {
	Value string
}

func (e *UnknownKernelError) Error() string {
	return fmt.Sprintf("shearwarp: unknown kernel %q (valid: auto, scalar, packed)", e.Value)
}

// ParseKernel converts a kernel name ("auto", "scalar", "packed"; ""
// means auto). Unknown names return a *UnknownKernelError.
func ParseKernel(s string) (Kernel, error) {
	k, err := cpudispatch.Parse(s)
	if err != nil {
		return 0, &UnknownKernelError{Value: s}
	}
	return Kernel(k), nil
}

// CPUFeatures reports the probed CPU features relevant to the packed
// tier ("avx2,fma", "neon,fma", "none", ...) for logs and metrics.
func CPUFeatures() string { return cpudispatch.FeatureString() }

// Mode selects a render mode. The constants mirror internal/rendermode
// one to one (the conversions in this file rely on the shared numbering).
type Mode int

// Render modes.
const (
	// ModeComposite is front-to-back alpha compositing with early ray
	// termination — the paper's workload and the default.
	ModeComposite Mode = iota
	// ModeMIP is maximum intensity projection: each ray keeps the
	// per-channel maximum of its premultiplied samples. Max never
	// saturates a pixel, so early ray termination is structurally off.
	ModeMIP
	// ModeIsosurface is surface display: classification thresholds the
	// raw densities (Config.IsoThreshold) into a binary-opaque,
	// gradient-shaded surface, which the standard over-blend then renders
	// as a first-opaque-surface projection.
	ModeIsosurface
)

func (m Mode) String() string { return rendermode.Mode(m).String() }

// UnknownModeError reports a mode name that ParseMode rejected.
type UnknownModeError struct {
	Value string
}

func (e *UnknownModeError) Error() string {
	return fmt.Sprintf("shearwarp: unknown mode %q (valid: composite, mip, iso)", e.Value)
}

// ParseMode converts a mode name ("composite", "mip", "iso"; "" means
// composite). Unknown names return a *UnknownModeError.
func ParseMode(s string) (Mode, error) {
	m, err := rendermode.Parse(s)
	if err != nil {
		return 0, &UnknownModeError{Value: s}
	}
	return Mode(m), nil
}

// Transfer selects a classification transfer function.
type Transfer int

// Built-in transfer functions.
const (
	TransferMRI Transfer = iota // soft-tissue classification
	TransferCT                  // bone-isolating classification
)

func (t Transfer) String() string {
	switch t {
	case TransferMRI:
		return "mri"
	case TransferCT:
		return "ct"
	}
	return fmt.Sprintf("Transfer(%d)", int(t))
}

// ParseTransfer converts a transfer-function name ("mri", "ct").
func ParseTransfer(s string) (Transfer, error) {
	switch s {
	case "mri", "":
		return TransferMRI, nil
	case "ct":
		return TransferCT, nil
	}
	return 0, fmt.Errorf("shearwarp: unknown transfer function %q", s)
}

// Config configures a Renderer.
type Config struct {
	Algorithm Algorithm
	Procs     int      // workers for the parallel algorithms (default 1)
	Transfer  Transfer // classification preset
	// Kernel selects the pixel-kernel tier (resolved once at renderer
	// construction; see the Kernel constants). The ray-casting baseline
	// ignores it.
	Kernel Kernel
	// Mode selects the render mode (composite, MIP, isosurface); see the
	// Mode constants. The packed kernel tier is composite-only: an
	// explicit Config.Kernel = KernelPacked with a non-composite mode
	// fails renderer construction with a typed
	// *cpudispatch.UnsupportedModeError, while KernelAuto falls back to
	// the scalar tier for those modes.
	Mode Mode
	// IsoThreshold is the density threshold of ModeIsosurface: voxels at
	// or above it form the surface. 0 selects the default
	// (classify.DefaultIsoThreshold, 128). Other modes ignore it.
	IsoThreshold uint8
	// OpacityCorrection enables the view-dependent correction of stored
	// opacities for the shear's per-slice sample spacing (Lacroute). The
	// ray-casting baseline samples at unit spacing and ignores it.
	OpacityCorrection bool
	// CollectStats attaches the per-worker phase-time instrumentation
	// (internal/perf) to the Serial, OldParallel and NewParallel
	// renderers: each Render then exposes a paper-style Figure-5/6
	// breakdown through LastBreakdown. Costs a few percent of frame time;
	// when false the renderers take the uninstrumented path (no clock
	// reads, byte-identical output).
	CollectStats bool
	// Faults, when non-nil, injects deterministic faults into the render
	// pipeline (internal/faultinject) for chaos testing. Nil (the
	// default) costs nothing.
	Faults *faultinject.Injector
}

// ValidationError reports a request parameter the renderer rejected
// before (or instead of) rendering: a non-finite angle, or a viewpoint
// whose factorization degenerates. The render service maps it to a 400.
type ValidationError struct {
	Param  string // offending parameter ("yaw", "pitch", "view")
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("shearwarp: invalid %s: %s", e.Param, e.Reason)
}

// Renderer renders frames of one volume.
//
// Concurrent-use contract: a Renderer renders one frame at a time — the
// parallelism lives inside each Render call, and the per-frame images,
// profile state and perf collector are reused across calls. Callers that
// need overlapping Render calls (a render service) must use distinct
// Renderers; RendererPool manages a fixed set over shared preprocessing,
// and PreparedVolume makes that sharing cheap by classifying and
// run-length-encoding the volume once for the whole pool.
type Renderer struct {
	cfg Config
	r   *render.Renderer
	nr  *newalg.Renderer // cross-frame state for NewParallel
	rc  *raycast.Renderer
	pc  *perf.Collector       // nil unless cfg.CollectStats
	bd  *PhaseBreakdown       // breakdown of the last rendered frame
	sr  *telemetry.FrameSpans // nil unless a span recorder is attached
}

// Image is a rendered frame.
type Image struct{ f *img.Final }

// Width returns the image width in pixels.
func (im *Image) Width() int { return im.f.W }

// Height returns the image height in pixels.
func (im *Image) Height() int { return im.f.H }

// At returns the 8-bit RGB value of pixel (x, y).
func (im *Image) At(x, y int) (r, g, b uint8) { return im.f.AtRGB(x, y) }

// WritePPM writes the image as binary PPM.
func (im *Image) WritePPM(w io.Writer) error { return im.f.WritePPM(w) }

// WritePNG writes the image as PNG.
func (im *Image) WritePNG(w io.Writer) error { return im.f.WritePNG(w) }

// NonBlackPixels counts pixels with any non-zero channel.
func (im *Image) NonBlackPixels() int { return im.f.NonBlackCount() }

// FrameInfo reports the modeled work of one rendered frame.
type FrameInfo struct {
	Cycles      int64 // modeled instruction cycles (1-CPI cost model)
	Samples     int64 // composited (resampled + blended) samples
	Scanlines   int64 // intermediate scanlines processed
	Steals      int   // task-stealing events (parallel algorithms)
	Profiled    bool  // whether this frame collected a cost profile
	IntW, IntH  int   // intermediate image size
	FinalW      int   // final image size
	FinalH      int
	Transparent float64 // transparent fraction of the classified volume
}

// NewRenderer builds a renderer for a raw 8-bit volume with X varying
// fastest (data[(z*ny+y)*nx+x]).
func NewRenderer(data []uint8, nx, ny, nz int, cfg Config) (*Renderer, error) {
	if len(data) != nx*ny*nz {
		return nil, fmt.Errorf("shearwarp: volume data length %d != %d*%d*%d", len(data), nx, ny, nz)
	}
	if nx < 2 || ny < 2 || nz < 2 {
		return nil, fmt.Errorf("shearwarp: volume too small (%dx%dx%d)", nx, ny, nz)
	}
	v := &vol.Volume{Nx: nx, Ny: ny, Nz: nz, Data: data}
	return newRenderer(v, cfg)
}

// NewMRIPhantom builds a renderer over the synthetic MRI head phantom. It
// panics on an invalid Config (today only the packed kernel tier combined
// with a non-composite mode); use NewRenderer to receive that as an error.
func NewMRIPhantom(n int, cfg Config) *Renderer {
	re, err := newRenderer(vol.MRIBrain(n), cfg)
	if err != nil {
		panic(err)
	}
	return re
}

// NewCTPhantom builds a renderer over the synthetic CT head phantom. When
// cfg.Transfer is unset it defaults to the CT transfer function. Like
// NewMRIPhantom it panics on an invalid Config.
func NewCTPhantom(n int, cfg Config) *Renderer {
	cfg.Transfer = TransferCT
	re, err := newRenderer(vol.CTHead(n), cfg)
	if err != nil {
		panic(err)
	}
	return re
}

// isoThreshold returns the effective isosurface threshold of a config
// (0 means the default).
func isoThreshold(cfg Config) uint8 {
	if cfg.IsoThreshold == 0 {
		return classify.DefaultIsoThreshold
	}
	return cfg.IsoThreshold
}

func newRenderer(v *vol.Volume, cfg Config) (*Renderer, error) {
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	kr, err := cpudispatch.ResolveForMode(cpudispatch.Kernel(cfg.Kernel), rendermode.Mode(cfg.Mode))
	if err != nil {
		return nil, err
	}
	opt := render.Options{
		OpacityCorrection: cfg.OpacityCorrection,
		PreprocProcs:      cfg.Procs,
		Kernel:            kr,
		Mode:              rendermode.Mode(cfg.Mode),
	}
	switch {
	case cfg.Mode == ModeIsosurface:
		// The isosurface mode lives in classification: the thresholding
		// transfer function replaces the preset, and the over-blend
		// renders the resulting binary-opaque volume as a surface.
		opt.Transfer = classify.IsoTransfer(isoThreshold(cfg))
	case cfg.Transfer == TransferCT:
		opt.Transfer = classify.CTTransfer
	}
	return newRendererFrom(render.New(v, opt), cfg), nil
}

// newRendererFrom wraps an already-prepared pipeline renderer with the
// public algorithm dispatch; NewRenderer and PreparedVolume.NewRenderer
// share it so pooled and private renderers behave identically.
func newRendererFrom(r *render.Renderer, cfg Config) *Renderer {
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	re := &Renderer{cfg: cfg, r: r}
	if cfg.CollectStats && cfg.Algorithm != RayCast {
		re.pc = perf.NewCollector(cfg.Procs)
	}
	if cfg.Algorithm == NewParallel {
		re.nr = newalg.NewRenderer(r, newalg.Config{Procs: cfg.Procs})
		re.nr.Perf = re.pc
	}
	if cfg.Algorithm == RayCast {
		re.rc = raycast.New(r.Classified)
		re.rc.Mode = r.Mode
	}
	re.SetFaultInjector(cfg.Faults)
	return re
}

// SetFaultInjector attaches (or, with nil, detaches) a fault injector to
// every layer of this renderer's pipeline. Call it between frames only.
func (re *Renderer) SetFaultInjector(in *faultinject.Injector) {
	re.cfg.Faults = in
	re.r.Faults = in
	if re.nr != nil {
		re.nr.Faults = in
	}
}

// SetSpanRecorder attaches (or, with nil, detaches) a per-request span
// recorder to every layer of this renderer's pipeline: subsequent frames
// record one timestamped span per worker phase into it (the render
// service's per-request traces). Like the fault injector it follows the
// nil-checked instrumentation contract — detached, the frame loop
// performs no extra clock reads and allocates nothing. Call it between
// frames only; the caller retains ownership of the recorder and must
// detach it before reusing the renderer for an untraced request.
func (re *Renderer) SetSpanRecorder(sr *telemetry.FrameSpans) {
	re.sr = sr
	re.r.Spans = sr
	if re.nr != nil {
		re.nr.Spans = sr
	}
}

// Close releases the renderer's persistent worker goroutines (NewParallel
// keeps one per processor parked between frames). It is optional — an
// abandoned Renderer merely parks its workers — but pools that cycle
// many renderers use it to release them deterministically. The renderer
// must not be used after Close.
func (re *Renderer) Close() {
	if re.nr != nil {
		re.nr.Close()
		re.nr = nil
	}
}

// Render renders one frame from the given viewpoint (degrees of yaw about
// the vertical axis, then pitch). It is the uncancellable entry point: it
// runs under context.Background and panics on the (typed) errors that
// RenderCtx returns; services use RenderCtx.
func (re *Renderer) Render(yawDeg, pitchDeg float64) (*Image, FrameInfo) {
	im, info, err := re.RenderCtx(context.Background(), yawDeg, pitchDeg)
	if err != nil {
		panic(err)
	}
	return im, info
}

// validateView checks the viewpoint before any rendering state is
// touched: the angles must be finite and the factorization they imply
// must be non-degenerate. Factorization panics ("singular matrix",
// "singular 2-D warp", oversize images) convert to *ValidationError here,
// at the API boundary, rather than surfacing as worker panics mid-frame.
func (re *Renderer) validateView(yawDeg, pitchDeg, yaw, pitch float64) (f xform.Factorization, err error) {
	if math.IsNaN(yawDeg) || math.IsInf(yawDeg, 0) {
		return f, &ValidationError{Param: "yaw", Reason: fmt.Sprintf("must be finite, got %v", yawDeg)}
	}
	if math.IsNaN(pitchDeg) || math.IsInf(pitchDeg, 0) {
		return f, &ValidationError{Param: "pitch", Reason: fmt.Sprintf("must be finite, got %v", pitchDeg)}
	}
	defer func() {
		if v := recover(); v != nil {
			err = &ValidationError{Param: "view", Reason: fmt.Sprint(v)}
		}
	}()
	v := re.r.Vol
	f = xform.Factorize(v.Nx, v.Ny, v.Nz, xform.ViewMatrix(v.Nx, v.Ny, v.Nz, yaw, pitch))
	return f, nil
}

// renderRayCast runs the image-order baseline with panic containment (it
// has no cooperative cancel points; the context is checked only between
// phases).
func (re *Renderer) renderRayCast(yaw, pitch float64, cnt *raycast.Counters) (out *img.Final, err error) {
	defer func() {
		if v := recover(); v != nil {
			out, err = nil, render.NewFrameError(0, "raycast", -1, v)
		}
	}()
	fr := re.r.Setup(yaw, pitch)
	return re.rc.Render(&fr.F, cnt), nil
}

// RenderCtx is Render with request validation, cooperative cancellation
// and panic isolation. Invalid viewpoints return a *ValidationError
// before any work starts; a cancelled ctx stops the frame within one
// scanline of work per worker and returns ctx's error; a panic anywhere
// in the pipeline is recovered into a *render.FrameError, after which the
// renderer remains usable and its next frame renders byte-identically.
// On error the returned Image is nil.
func (re *Renderer) RenderCtx(ctx context.Context, yawDeg, pitchDeg float64) (*Image, FrameInfo, error) {
	yaw := yawDeg * math.Pi / 180
	pitch := pitchDeg * math.Pi / 180
	f, err := re.validateView(yawDeg, pitchDeg, yaw, pitch)
	if err != nil {
		return nil, FrameInfo{}, err
	}
	info := FrameInfo{Transparent: re.r.Classified.TransparentFrac()}
	var out *img.Final
	switch re.cfg.Algorithm {
	case OldParallel:
		res, err := oldalg.RenderCtx(ctx, re.r, yaw, pitch,
			oldalg.Config{Procs: re.cfg.Procs, Perf: re.pc, Faults: re.cfg.Faults, Spans: re.sr})
		if err != nil {
			return nil, FrameInfo{}, err
		}
		st := res.Stats()
		out = res.Out
		info.Cycles = st.TotalCycles()
		info.Samples = st.Composite.Samples
		info.Scanlines = st.Composite.Scanlines
		for _, ps := range res.PerProc {
			info.Steals += ps.Steals
		}
	case NewParallel:
		res, err := re.nr.RenderFrameCtx(ctx, yaw, pitch)
		if err != nil {
			return nil, FrameInfo{}, err
		}
		st := res.Stats()
		out = res.Out
		info.Cycles = st.TotalCycles()
		info.Samples = st.Composite.Samples
		info.Scanlines = st.Composite.Scanlines
		info.Profiled = res.Profiled
		for _, ps := range res.PerProc {
			info.Steals += ps.Steals
		}
	case RayCast:
		if err := ctx.Err(); err != nil {
			return nil, FrameInfo{}, err
		}
		var cnt raycast.Counters
		o, err := re.renderRayCast(yaw, pitch, &cnt)
		if err != nil {
			return nil, FrameInfo{}, err
		}
		out = o
		info.Cycles = cnt.Cycles
		info.Samples = cnt.Composites
	default: // Serial
		o, st, err := re.r.RenderSerialCtx(ctx, yaw, pitch, re.pc)
		if err != nil {
			return nil, FrameInfo{}, err
		}
		out = o
		info.Cycles = st.TotalCycles()
		info.Samples = st.Composite.Samples
		info.Scanlines = st.Composite.Scanlines
	}
	if re.pc != nil {
		re.bd = &PhaseBreakdown{fb: re.pc.Breakdown(re.cfg.Algorithm.String())}
	}
	info.IntW, info.IntH = f.IntW, f.IntH
	info.FinalW, info.FinalH = f.FinalW, f.FinalH
	return &Image{f: out}, info, nil
}

// PhaseBreakdown is the per-worker execution-time breakdown of one frame
// — the native, wall-clock analog of the paper's Figure 5/6 busy /
// synchronization / load-imbalance bars. Obtain one from
// Renderer.LastBreakdown after rendering with Config.CollectStats.
type PhaseBreakdown struct {
	fb *perf.FrameBreakdown
}

// Table renders the breakdown as an aligned text table, one row per
// worker, in the paper's Figure 5/6 vocabulary.
func (b *PhaseBreakdown) Table() string { return b.fb.Table().String() }

// JSON marshals the breakdown (indented, stable field order).
func (b *PhaseBreakdown) JSON() ([]byte, error) { return b.fb.JSON() }

// ImbalanceFrac is the frame's aggregate load-imbalance fraction: mean
// per-worker idle time outside tracked waits over the frame wall time.
func (b *PhaseBreakdown) ImbalanceFrac() float64 { return b.fb.ImbalanceFrac() }

// WallNanos is the frame's wall-clock duration in nanoseconds.
func (b *PhaseBreakdown) WallNanos() int64 { return b.fb.WallNS }

// Frame exposes the underlying perf.FrameBreakdown for tools inside this
// module (the internal package is not importable from outside).
func (b *PhaseBreakdown) Frame() *perf.FrameBreakdown { return b.fb }

// LastBreakdown returns the phase breakdown of the most recent Render
// call, or nil when Config.CollectStats is off or the algorithm is
// RayCast (which has no shear-warp phases to break down). The returned
// value is a snapshot and stays valid across later frames.
func (re *Renderer) LastBreakdown() *PhaseBreakdown { return re.bd }

// Mode reports the render mode this renderer runs with. Services report
// it alongside the algorithm and kernel in logs and /metrics.
func (re *Renderer) Mode() Mode { return re.cfg.Mode }

// Kernel reports the resolved pixel-kernel tier this renderer runs with
// (never KernelAuto — construction resolves the choice). Services report
// it alongside the algorithm in logs and /metrics.
func (re *Renderer) Kernel() Kernel { return Kernel(re.r.Kernel) }

// ListFigures returns the IDs and titles of the reproducible paper figures
// and the ablation studies.
func ListFigures() [][2]string {
	var out [][2]string
	for _, f := range experiments.Everything() {
		out = append(out, [2]string{f.ID, f.Title})
	}
	return out
}

// RunFigure regenerates one paper figure ("fig2".."fig22"), ablation
// ("abl-*"), extra ("rates", "attr", "inventory") or "all" at the named
// scale ("small", "default", "large"), writing text tables to w.
func RunFigure(id, scale string, w io.Writer) error {
	return RunFigureFormat(id, scale, "text", w)
}

// RunFigureFormat is RunFigure with a choice of output format: "text"
// (aligned tables) or "csv".
func RunFigureFormat(id, scale, format string, w io.Writer) error {
	sc, ok := experiments.ScaleByName(scale)
	if !ok {
		return fmt.Errorf("shearwarp: unknown scale %q (small, default, large)", scale)
	}
	lab := experiments.NewLab(sc)
	run := func(f experiments.Figure) error {
		for _, tb := range f.Run(lab) {
			var s string
			switch format {
			case "csv":
				s = "# == " + tb.ID + ": " + tb.Title + "\n" + tb.CSV()
			default:
				s = tb.String()
			}
			if _, err := io.WriteString(w, s+"\n"); err != nil {
				return err
			}
		}
		return nil
	}
	if id == "all" {
		for _, f := range experiments.Everything() {
			if err := run(f); err != nil {
				return err
			}
		}
		return nil
	}
	f, ok := experiments.ByID(id)
	if !ok {
		return fmt.Errorf("shearwarp: unknown figure %q", id)
	}
	return run(f)
}
