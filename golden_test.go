package shearwarp

// Golden-equivalence test: the optimized untraced kernels must produce
// byte-identical final images across all three algorithms for every tested
// viewpoint. This locks in the invariant the fast paths are built on — the
// serial renderer is the reference, and neither parallel decomposition nor
// the branch-free kernels may change a single pixel byte.

import (
	"math"
	"testing"

	"shearwarp/internal/img"
	"shearwarp/internal/newalg"
	"shearwarp/internal/oldalg"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

func TestGoldenEquivalence(t *testing.T) {
	// Viewpoints in degrees, chosen to hit more than one principal axis and
	// both pitch signs.
	views := [][2]float64{{30, 15}, {100, -35}, {200, 65}}
	for _, correct := range []bool{false, true} {
		name := "plain"
		if correct {
			name = "opacity-corrected"
		}
		t.Run(name, func(t *testing.T) {
			r := render.New(vol.MRIBrain(48), render.Options{OpacityCorrection: correct})
			nr := newalg.NewRenderer(r, newalg.Config{Procs: 4})
			for _, vw := range views {
				yaw := vw[0] * math.Pi / 180
				pitch := vw[1] * math.Pi / 180
				want, _ := r.RenderSerial(yaw, pitch)
				if n := want.NonBlackCount(); n == 0 {
					t.Fatalf("view (%g, %g): serial render is all black", vw[0], vw[1])
				}

				oldRes := oldalg.Render(r, yaw, pitch, oldalg.Config{Procs: 4})
				if !img.Equal(want, oldRes.Out) {
					d := img.Compare(want, oldRes.Out)
					t.Errorf("view (%g, %g): OldParallel differs from Serial: %d pixels, max |Δ| %d",
						vw[0], vw[1], d.Differs, d.MaxAbs)
				}

				// The new renderer carries cross-frame profile state; rendering
				// the viewpoints in sequence exercises both profiled and
				// profile-reusing frames.
				newRes := nr.RenderFrame(yaw, pitch)
				if !img.Equal(want, newRes.Out) {
					d := img.Compare(want, newRes.Out)
					t.Errorf("view (%g, %g): NewParallel differs from Serial: %d pixels, max |Δ| %d",
						vw[0], vw[1], d.Differs, d.MaxAbs)
				}
			}
		})
	}
}
