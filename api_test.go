package shearwarp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCollectStatsBreakdown(t *testing.T) {
	for _, alg := range []Algorithm{Serial, OldParallel, NewParallel} {
		procs := 3
		if alg == Serial {
			procs = 1
		}
		r := NewMRIPhantom(20, Config{Algorithm: alg, Procs: procs, CollectStats: true})
		if r.LastBreakdown() != nil {
			t.Fatalf("%v: breakdown present before any frame", alg)
		}
		im, _ := r.Render(30, 15)
		bd := r.LastBreakdown()
		if bd == nil {
			t.Fatalf("%v: no breakdown with CollectStats", alg)
		}
		fb := bd.Frame()
		if fb.Workers != procs || len(fb.PerWorker) != procs {
			t.Fatalf("%v: breakdown has %d workers, want %d", alg, fb.Workers, procs)
		}
		if bd.WallNanos() <= 0 {
			t.Fatalf("%v: wall time %d", alg, bd.WallNanos())
		}
		var scan, busy int64
		for i := range fb.PerWorker {
			scan += fb.PerWorker[i].Scanlines
			busy += fb.PerWorker[i].BusyNS()
		}
		if scan == 0 || busy <= 0 {
			t.Fatalf("%v: empty breakdown (scanlines %d, busy %dns)", alg, scan, busy)
		}
		if f := bd.ImbalanceFrac(); f < 0 || f > 1 {
			t.Fatalf("%v: imbalance fraction %f out of range", alg, f)
		}
		tbl := bd.Table()
		if !strings.Contains(tbl, "imbal(ms)") || !strings.Contains(tbl, "phases-"+alg.String()) {
			t.Fatalf("%v: malformed table:\n%s", alg, tbl)
		}
		data, err := bd.JSON()
		if err != nil {
			t.Fatalf("%v: JSON: %v", alg, err)
		}
		var decoded map[string]any
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("%v: JSON invalid: %v", alg, err)
		}
		if decoded["algorithm"] != alg.String() {
			t.Fatalf("%v: JSON algorithm = %v", alg, decoded["algorithm"])
		}

		// The instrumented render must be byte-identical to the plain one.
		plain := NewMRIPhantom(20, Config{Algorithm: alg, Procs: procs})
		pim, _ := plain.Render(30, 15)
		for y := 0; y < im.Height(); y++ {
			for x := 0; x < im.Width(); x++ {
				ar, ag, ab := im.At(x, y)
				br, bg, bb := pim.At(x, y)
				if ar != br || ag != bg || ab != bb {
					t.Fatalf("%v: instrumented pixel (%d,%d) differs", alg, x, y)
				}
			}
		}
	}
}

func TestCollectStatsRayCastAndDisabled(t *testing.T) {
	rc := NewMRIPhantom(20, Config{Algorithm: RayCast, CollectStats: true})
	rc.Render(30, 15)
	if rc.LastBreakdown() != nil {
		t.Fatal("raycast produced a phase breakdown")
	}
	off := NewMRIPhantom(20, Config{Algorithm: NewParallel, Procs: 2})
	off.Render(30, 15)
	if off.LastBreakdown() != nil {
		t.Fatal("breakdown present without CollectStats")
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	var images []*Image
	for _, alg := range []Algorithm{Serial, OldParallel, NewParallel} {
		r := NewMRIPhantom(20, Config{Algorithm: alg, Procs: 4})
		im, info := r.Render(30, 15)
		if im.NonBlackPixels() == 0 {
			t.Fatalf("%v rendered a black image", alg)
		}
		if info.Cycles == 0 || info.Samples == 0 {
			t.Fatalf("%v: empty frame info %+v", alg, info)
		}
		images = append(images, im)
	}
	for i := 1; i < len(images); i++ {
		a, b := images[0], images[i]
		if a.Width() != b.Width() || a.Height() != b.Height() {
			t.Fatal("image sizes differ across algorithms")
		}
		for y := 0; y < a.Height(); y++ {
			for x := 0; x < a.Width(); x++ {
				ar, ag, ab := a.At(x, y)
				br, bg, bb := b.At(x, y)
				if ar != br || ag != bg || ab != bb {
					t.Fatalf("pixel (%d,%d) differs between algorithms", x, y)
				}
			}
		}
	}
}

func TestRayCastRenders(t *testing.T) {
	r := NewMRIPhantom(20, Config{Algorithm: RayCast})
	im, info := r.Render(30, 15)
	if im.NonBlackPixels() == 0 {
		t.Fatal("ray-cast image black")
	}
	if info.Samples == 0 {
		t.Fatal("ray caster took no samples")
	}
}

func TestCTPhantom(t *testing.T) {
	r := NewCTPhantom(24, Config{Algorithm: Serial})
	im, info := r.Render(40, 10)
	if im.NonBlackPixels() == 0 {
		t.Fatal("CT image black")
	}
	if info.Transparent < 0.5 {
		t.Fatalf("CT transparent fraction %.2f implausibly low", info.Transparent)
	}
}

func TestNewRendererValidation(t *testing.T) {
	if _, err := NewRenderer(make([]uint8, 10), 4, 4, 4, Config{}); err == nil {
		t.Fatal("bad data length accepted")
	}
	if _, err := NewRenderer(make([]uint8, 4), 1, 2, 2, Config{}); err == nil {
		t.Fatal("degenerate volume accepted")
	}
	data := make([]uint8, 8*8*8)
	for i := range data {
		data[i] = uint8(i)
	}
	r, err := NewRenderer(data, 8, 8, 8, Config{Algorithm: NewParallel, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if im, _ := r.Render(10, 5); im.Width() <= 0 {
		t.Fatal("render produced no raster")
	}
}

func TestAnimationProfilingCadence(t *testing.T) {
	r := NewMRIPhantom(20, Config{Algorithm: NewParallel, Procs: 2})
	profiled := 0
	for i := 0; i < 6; i++ {
		_, info := r.Render(float64(10+7*i), 10)
		if info.Profiled {
			profiled++
		}
	}
	if profiled == 0 || profiled == 6 {
		t.Fatalf("profiled %d of 6 frames; expected periodic re-profiling", profiled)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, s := range []string{"serial", "old", "new", "raycast"} {
		a, err := ParseAlgorithm(s)
		if err != nil || a.String() != s {
			t.Fatalf("round trip %q failed: %v %v", s, a, err)
		}
	}
	if _, err := ParseAlgorithm("quantum"); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestWritePPM(t *testing.T) {
	r := NewMRIPhantom(16, Config{})
	im, _ := r.Render(0, 0)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n") {
		t.Fatal("not a PPM")
	}
}

func TestListFigures(t *testing.T) {
	figs := ListFigures()
	if len(figs) < 15 {
		t.Fatalf("only %d figures listed", len(figs))
	}
	if figs[0][0] != "fig2" {
		t.Fatalf("first figure %q, want fig2", figs[0][0])
	}
}

func TestRunFigureSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFigure("fig10", "small", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Per-scanline profile") {
		t.Fatalf("fig10 output missing: %q", buf.String()[:min(len(buf.String()), 120)])
	}
	if err := RunFigure("fig99", "small", &buf); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := RunFigure("fig2", "galactic", &buf); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunFigureCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFigureFormat("fig10", "small", "csv", &buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "scanlines,cycles,profile") {
		t.Fatalf("CSV header missing: %q", s[:min(len(s), 150)])
	}
}
