package shearwarp

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllAlgorithmsAgree(t *testing.T) {
	var images []*Image
	for _, alg := range []Algorithm{Serial, OldParallel, NewParallel} {
		r := NewMRIPhantom(20, Config{Algorithm: alg, Procs: 4})
		im, info := r.Render(30, 15)
		if im.NonBlackPixels() == 0 {
			t.Fatalf("%v rendered a black image", alg)
		}
		if info.Cycles == 0 || info.Samples == 0 {
			t.Fatalf("%v: empty frame info %+v", alg, info)
		}
		images = append(images, im)
	}
	for i := 1; i < len(images); i++ {
		a, b := images[0], images[i]
		if a.Width() != b.Width() || a.Height() != b.Height() {
			t.Fatal("image sizes differ across algorithms")
		}
		for y := 0; y < a.Height(); y++ {
			for x := 0; x < a.Width(); x++ {
				ar, ag, ab := a.At(x, y)
				br, bg, bb := b.At(x, y)
				if ar != br || ag != bg || ab != bb {
					t.Fatalf("pixel (%d,%d) differs between algorithms", x, y)
				}
			}
		}
	}
}

func TestRayCastRenders(t *testing.T) {
	r := NewMRIPhantom(20, Config{Algorithm: RayCast})
	im, info := r.Render(30, 15)
	if im.NonBlackPixels() == 0 {
		t.Fatal("ray-cast image black")
	}
	if info.Samples == 0 {
		t.Fatal("ray caster took no samples")
	}
}

func TestCTPhantom(t *testing.T) {
	r := NewCTPhantom(24, Config{Algorithm: Serial})
	im, info := r.Render(40, 10)
	if im.NonBlackPixels() == 0 {
		t.Fatal("CT image black")
	}
	if info.Transparent < 0.5 {
		t.Fatalf("CT transparent fraction %.2f implausibly low", info.Transparent)
	}
}

func TestNewRendererValidation(t *testing.T) {
	if _, err := NewRenderer(make([]uint8, 10), 4, 4, 4, Config{}); err == nil {
		t.Fatal("bad data length accepted")
	}
	if _, err := NewRenderer(make([]uint8, 4), 1, 2, 2, Config{}); err == nil {
		t.Fatal("degenerate volume accepted")
	}
	data := make([]uint8, 8*8*8)
	for i := range data {
		data[i] = uint8(i)
	}
	r, err := NewRenderer(data, 8, 8, 8, Config{Algorithm: NewParallel, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if im, _ := r.Render(10, 5); im.Width() <= 0 {
		t.Fatal("render produced no raster")
	}
}

func TestAnimationProfilingCadence(t *testing.T) {
	r := NewMRIPhantom(20, Config{Algorithm: NewParallel, Procs: 2})
	profiled := 0
	for i := 0; i < 6; i++ {
		_, info := r.Render(float64(10+7*i), 10)
		if info.Profiled {
			profiled++
		}
	}
	if profiled == 0 || profiled == 6 {
		t.Fatalf("profiled %d of 6 frames; expected periodic re-profiling", profiled)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, s := range []string{"serial", "old", "new", "raycast"} {
		a, err := ParseAlgorithm(s)
		if err != nil || a.String() != s {
			t.Fatalf("round trip %q failed: %v %v", s, a, err)
		}
	}
	if _, err := ParseAlgorithm("quantum"); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestWritePPM(t *testing.T) {
	r := NewMRIPhantom(16, Config{})
	im, _ := r.Render(0, 0)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n") {
		t.Fatal("not a PPM")
	}
}

func TestListFigures(t *testing.T) {
	figs := ListFigures()
	if len(figs) < 15 {
		t.Fatalf("only %d figures listed", len(figs))
	}
	if figs[0][0] != "fig2" {
		t.Fatalf("first figure %q, want fig2", figs[0][0])
	}
}

func TestRunFigureSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFigure("fig10", "small", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Per-scanline profile") {
		t.Fatalf("fig10 output missing: %q", buf.String()[:min(len(buf.String()), 120)])
	}
	if err := RunFigure("fig99", "small", &buf); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := RunFigure("fig2", "galactic", &buf); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunFigureCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFigureFormat("fig10", "small", "csv", &buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "scanlines,cycles,profile") {
		t.Fatalf("CSV header missing: %q", s[:min(len(s), 150)])
	}
}
