package shearwarp

// Renderer pooling and shared preprocessing — the substrate of the
// shearwarpd render service. A Renderer renders one frame at a time, so a
// server handling overlapping requests needs several of them; naively
// that would classify and run-length-encode the volume once per renderer,
// which is exactly the per-frame amortization the shear-warp algorithm
// exists to avoid. PreparedVolume shares those view-independent products
// (classification, per-axis RLE encodings) across every renderer built
// from it, routing them through an LRU cache (internal/volcache) so a
// long-running service keeps its hot volumes prepared and ages out cold
// ones. RendererPool then bounds how many renderers exist per volume and
// hands them to requests one at a time.
//
// Types from internal packages (volcache.Cache) appear in a few exported
// signatures; like PhaseBreakdown.Frame, these entry points exist for the
// service and tools inside this module.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"shearwarp/internal/classify"
	"shearwarp/internal/cpudispatch"
	"shearwarp/internal/faultinject"
	"shearwarp/internal/render"
	"shearwarp/internal/rendermode"
	"shearwarp/internal/rle"
	"shearwarp/internal/vol"
	"shearwarp/internal/volcache"
	"shearwarp/internal/xform"
)

// VolumeKey fingerprints raw volume data (dimensions plus samples) as the
// volume component of preprocessing cache keys. Identical data always
// yields the same key, whatever name it is registered under.
func VolumeKey(data []uint8, nx, ny, nz int) string {
	return rle.VolumeKey(data, nx, ny, nz)
}

// VolumeModeKey is VolumeKey with the render mode folded in: distinct
// modes yield distinct keys (the preprocessing differs — or must never be
// shared — across modes), and ModeComposite reproduces VolumeKey exactly
// so pre-existing fingerprints stay stable. isoThreshold participates only
// for ModeIsosurface; pass 0 to mean the default threshold.
func VolumeModeKey(data []uint8, nx, ny, nz int, mode Mode, isoThreshold uint8) string {
	var thr uint8
	if mode == ModeIsosurface {
		thr = isoThreshold
		if thr == 0 {
			thr = classify.DefaultIsoThreshold
		}
	}
	return rle.VolumeModeKey(data, nx, ny, nz, uint8(mode), thr)
}

// PreparedVolume is a volume plus the recipe for its view-independent
// preprocessing, shared by every Renderer built from it. The products
// themselves live in an LRU cache keyed by (volume fingerprint, transfer
// function, principal axis); they are immutable once built, so renderers
// sharing them may render concurrently.
type PreparedVolume struct {
	v      *vol.Volume
	key    string
	tf     Transfer
	mode   Mode
	iso    uint8 // effective isosurface threshold (never 0)
	procs  int
	cache  *volcache.Cache
	faults *faultinject.Injector
}

// SetFaultInjector attaches (or, with nil, detaches) a fault injector to
// this volume's preprocessing builds (site "cachebuild"). Call it before
// building renderers.
func (pv *PreparedVolume) SetFaultInjector(in *faultinject.Injector) { pv.faults = in }

// PrepareVolume wraps a raw 8-bit volume (X fastest, as in NewRenderer)
// for shared rendering. procs parallelizes classification and encoding
// builds. cache receives the preprocessing products; nil gets a private
// unbounded cache, which still deduplicates work across the renderers of
// this PreparedVolume.
func PrepareVolume(data []uint8, nx, ny, nz int, transfer Transfer, procs int, cache *volcache.Cache) (*PreparedVolume, error) {
	return PrepareVolumeMode(data, nx, ny, nz, transfer, ModeComposite, 0, procs, cache)
}

// PrepareVolumeMode is PrepareVolume for a specific render mode: the mode
// (and, for ModeIsosurface, the density threshold — 0 selects the default)
// is baked into the prepared preprocessing exactly like the transfer
// function, and into the cache keys, so renderers of different modes never
// share a classification or encoding. Renderers built from the result
// always render with this mode (cfg.Mode is overridden).
func PrepareVolumeMode(data []uint8, nx, ny, nz int, transfer Transfer, mode Mode, isoThr uint8, procs int, cache *volcache.Cache) (*PreparedVolume, error) {
	if len(data) != nx*ny*nz {
		return nil, fmt.Errorf("shearwarp: volume data length %d != %d*%d*%d", len(data), nx, ny, nz)
	}
	if nx < 2 || ny < 2 || nz < 2 {
		return nil, fmt.Errorf("shearwarp: volume too small (%dx%dx%d)", nx, ny, nz)
	}
	if procs < 1 {
		procs = 1
	}
	if cache == nil {
		cache = volcache.New(0)
	}
	iso := isoThr
	if iso == 0 {
		iso = classify.DefaultIsoThreshold
	}
	return &PreparedVolume{
		v:     &vol.Volume{Nx: nx, Ny: ny, Nz: nz, Data: data},
		key:   VolumeModeKey(data, nx, ny, nz, mode, isoThr),
		tf:    transfer,
		mode:  mode,
		iso:   iso,
		procs: procs,
		cache: cache,
	}, nil
}

// Key returns the volume's content fingerprint.
func (pv *PreparedVolume) Key() string { return pv.key }

// TransferFunc returns the transfer function the volume classifies with.
func (pv *PreparedVolume) TransferFunc() Transfer { return pv.tf }

// Mode returns the render mode baked into the prepared preprocessing.
func (pv *PreparedVolume) Mode() Mode { return pv.mode }

// Dims returns the volume dimensions.
func (pv *PreparedVolume) Dims() (nx, ny, nz int) { return pv.v.Nx, pv.v.Ny, pv.v.Nz }

// classified fetches (building on a miss) the classified volume. A build
// failure caches nothing and is retried on the next call (see volcache).
func (pv *PreparedVolume) classified() (*classify.Classified, error) {
	k := volcache.Key{Volume: pv.key, Transfer: pv.tf.String(), Axis: volcache.AxisNone}
	v, err := pv.cache.GetOrBuildE(k, func() (any, int64, error) {
		if err := pv.faults.Error("cachebuild", -1, -1); err != nil {
			return nil, 0, err
		}
		pv.faults.Visit("cachebuild", -1, -1)
		opt := classify.Options{}
		switch {
		case pv.mode == ModeIsosurface:
			opt.Transfer = classify.IsoTransfer(pv.iso)
		case pv.tf == TransferCT:
			opt.Transfer = classify.CTTransfer
		}
		c := classify.ClassifyParallel(pv.v, opt, pv.procs)
		return c, int64(len(c.Voxels)) * 4, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*classify.Classified), nil
}

// encoding fetches (building on a miss) the RLE encoding for one
// principal axis of the given classified volume. It panics on a build
// failure: the call happens lazily inside a frame's setup (through the
// render.Renderer encodeFn), whose panic containment converts it to a
// *render.FrameError with phase "setup".
func (pv *PreparedVolume) encoding(c *classify.Classified, axis xform.Axis) *rle.Volume {
	k := volcache.Key{Volume: pv.key, Transfer: pv.tf.String(), Axis: axis}
	v := pv.cache.GetOrBuild(k, func() (any, int64) {
		if err := pv.faults.Error("cachebuild", -1, int(axis)); err != nil {
			panic(err)
		}
		pv.faults.Visit("cachebuild", -1, int(axis))
		rv := rle.EncodeParallel(c, axis, pv.procs)
		return rv, rv.MemoryBytes()
	})
	return v.(*rle.Volume)
}

// NewRenderer builds a renderer sharing this volume's cached
// preprocessing. cfg.Transfer is overridden by the prepared transfer
// function (it is baked into the cached classification); everything else
// behaves as in NewRenderer. Output images are byte-identical to a
// renderer built directly over the same data and config. It fails if the
// classification build fails (a later call retries the build).
func (pv *PreparedVolume) NewRenderer(cfg Config) (*Renderer, error) {
	cfg.Transfer = pv.tf
	cfg.Mode = pv.mode
	cfg.IsoThreshold = pv.iso
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	kr, err := cpudispatch.ResolveForMode(cpudispatch.Kernel(cfg.Kernel), rendermode.Mode(cfg.Mode))
	if err != nil {
		return nil, err
	}
	c, err := pv.classified()
	if err != nil {
		return nil, err
	}
	opt := render.Options{
		OpacityCorrection: cfg.OpacityCorrection,
		PreprocProcs:      cfg.Procs,
		Kernel:            kr,
		Mode:              rendermode.Mode(cfg.Mode),
	}
	r := render.NewShared(pv.v, c, func(axis xform.Axis) *rle.Volume {
		return pv.encoding(c, axis)
	}, opt)
	return newRendererFrom(r, cfg), nil
}

// ErrPoolClosed is returned by RendererPool.Acquire after Close.
var ErrPoolClosed = errors.New("shearwarp: renderer pool closed")

// RendererPool is a fixed set of Renderers handed to callers one at a
// time, making a set of single-frame renderers safe to drive from
// concurrent requests. Acquire blocks until a renderer is free (or the
// context ends); Release returns it. The pool is safe for concurrent use.
type RendererPool struct {
	free  chan *Renderer
	done  chan struct{} // closed by Close; unblocks waiting Acquires
	build func() (*Renderer, error)

	mu     sync.Mutex
	closed bool
}

// NewRendererPool builds size renderers with the given constructor. On
// constructor error the already-built renderers are closed and the error
// returned.
func NewRendererPool(size int, build func() (*Renderer, error)) (*RendererPool, error) {
	if size < 1 {
		size = 1
	}
	p := &RendererPool{
		free:  make(chan *Renderer, size),
		done:  make(chan struct{}),
		build: build,
	}
	for i := 0; i < size; i++ {
		r, err := build()
		if err != nil {
			// Tear down the renderers built so far (all of them are in
			// free — nothing has been acquired yet).
			p.mu.Lock()
			p.closed = true
			p.mu.Unlock()
			close(p.done)
			for drained := false; !drained; {
				select {
				case r := <-p.free:
					r.Close()
				default:
					drained = true
				}
			}
			return nil, fmt.Errorf("shearwarp: building pool renderer %d: %w", i, err)
		}
		p.free <- r
	}
	return p, nil
}

// Size returns the pool's renderer count.
func (p *RendererPool) Size() int { return cap(p.free) }

// Idle returns how many renderers are currently free (a snapshot).
func (p *RendererPool) Idle() int { return len(p.free) }

// Acquire returns a free renderer, blocking until one is released, the
// context is done, or the pool closes. The caller must Release it.
func (p *RendererPool) Acquire(ctx context.Context) (*Renderer, error) {
	select {
	case r := <-p.free:
		return r, nil
	default:
	}
	select {
	case r := <-p.free:
		return r, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.done:
		return nil, ErrPoolClosed
	}
}

// Release returns a renderer to the pool. Every Acquire must be paired
// with exactly one Release, even after Close (Close waits for outstanding
// renderers to come back).
func (p *RendererPool) Release(r *Renderer) {
	p.free <- r // cap == size and Acquire/Release pair up, so never blocks
}

// Discard retires an acquired renderer and replaces it with a freshly
// built one — the service calls this instead of Release after a frame
// panicked, trading the (recovered, believed-consistent) renderer for a
// provably clean one. The replacement is built first: if the build fails,
// the original renderer is returned to the pool (a recovered renderer
// remains usable — every panic path restores its invariants) and the
// build error is reported, so the pool never shrinks either way.
func (p *RendererPool) Discard(r *Renderer) error {
	fresh, err := p.build()
	if err != nil {
		p.free <- r
		return fmt.Errorf("shearwarp: replacing discarded renderer: %w", err)
	}
	p.free <- fresh
	r.Close()
	return nil
}

// Close waits for all renderers to be released and shuts them down.
// Subsequent Acquires fail with ErrPoolClosed; it is safe to call Close
// once only.
func (p *RendererPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	for i := 0; i < cap(p.free); i++ {
		r := <-p.free
		r.Close()
	}
}
