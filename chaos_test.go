package shearwarp

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"shearwarp/internal/faultinject"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

// renderPPM renders one frame and returns its PPM bytes.
func renderPPM(t *testing.T, re *Renderer, yaw, pitch float64) []byte {
	t.Helper()
	im, _, err := re.RenderCtx(context.Background(), yaw, pitch)
	if err != nil {
		t.Fatalf("clean render failed: %v", err)
	}
	var b bytes.Buffer
	if err := im.WritePPM(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestChaosSoak drives both parallel algorithms through a schedule of
// seed-derived faults (panics, delays, cancels at random sites and
// workers). The invariants after every seed: the error, if any, is typed
// (*render.FrameError or a context error, never a raw panic escaping);
// no goroutines leak; and the next clean frame is byte-identical to the
// golden frame — injected faults must leave no trace in later output.
func TestChaosSoak(t *testing.T) {
	const procs = 4
	const seeds = 24
	v := vol.MRIBrain(32)

	for _, alg := range []Algorithm{NewParallel, OldParallel} {
		t.Run(alg.String(), func(t *testing.T) {
			re, err := NewRenderer(v.Data, v.Nx, v.Ny, v.Nz, Config{Algorithm: alg, Procs: procs})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			golden := renderPPM(t, re, 30, 15)
			before := runtime.NumGoroutine()

			for seed := int64(1); seed <= seeds; seed++ {
				in := faultinject.FromSeed(seed, procs)
				ctx, cancel := context.WithCancel(context.Background())
				in.SetCancel(cancel)
				re.SetFaultInjector(in)

				_, _, err := re.RenderCtx(ctx, 30, 15)
				cancel()
				if err != nil {
					var fe *render.FrameError
					if !errors.As(err, &fe) &&
						!errors.Is(err, context.Canceled) &&
						!errors.Is(err, context.DeadlineExceeded) {
						t.Fatalf("seed %d (%v): untyped error %v", seed, in.Rules(), err)
					}
				}

				// Clean frame after the fault must be byte-identical.
				re.SetFaultInjector(nil)
				if got := renderPPM(t, re, 30, 15); !bytes.Equal(golden, got) {
					t.Fatalf("seed %d (%v): frame after fault differs from golden", seed, in.Rules())
				}
			}

			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before+2 {
				if time.Now().After(deadline) {
					buf := make([]byte, 1<<20)
					n := runtime.Stack(buf, true)
					t.Fatalf("goroutines leaked after soak: before %d, now %d\n%s",
						before, runtime.NumGoroutine(), buf[:n])
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestValidationErrors checks the API boundary: non-finite angles are
// rejected with *ValidationError before any rendering starts, for every
// algorithm, and the renderer keeps working afterwards.
func TestValidationErrors(t *testing.T) {
	v := vol.MRIBrain(16)
	nan := func() float64 { var z float64; return z / z }()
	for _, alg := range []Algorithm{Serial, OldParallel, NewParallel, RayCast} {
		re, err := NewRenderer(v.Data, v.Nx, v.Ny, v.Nz, Config{Algorithm: alg, Procs: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, bad := range [][2]float64{{nan, 0}, {0, nan}} {
			_, _, err := re.RenderCtx(context.Background(), bad[0], bad[1])
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("alg %v angles %v: err = %v, want *ValidationError", alg, bad, err)
			}
		}
		if _, _, err := re.RenderCtx(context.Background(), 30, 15); err != nil {
			t.Fatalf("alg %v: clean render after validation errors failed: %v", alg, err)
		}
		re.Close()
	}
}

// TestCacheBuildFailureDoesNotPoisonPool injects an error into the
// classification build: NewRenderer must fail with the injected error,
// and a later attempt without the fault must succeed (the failed build is
// not cached).
func TestCacheBuildFailureDoesNotPoisonPool(t *testing.T) {
	v := vol.MRIBrain(16)
	pv, err := PrepareVolume(v.Data, v.Nx, v.Ny, v.Nz, TransferMRI, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	pv.SetFaultInjector(faultinject.New(faultinject.Rule{
		Kind: faultinject.KindError, Site: "cachebuild", Worker: -1, Band: -1,
	}))
	if _, err := pv.NewRenderer(Config{Algorithm: NewParallel, Procs: 2}); err == nil {
		t.Fatal("injected cachebuild error did not surface")
	}
	pv.SetFaultInjector(nil)
	re, err := pv.NewRenderer(Config{Algorithm: NewParallel, Procs: 2})
	if err != nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	defer re.Close()
	if im, _ := re.Render(30, 15); im.NonBlackPixels() == 0 {
		t.Fatal("renderer built after failed cache build produced a black frame")
	}
}

// TestEncodingBuildPanicBecomesSetupFrameError injects a panic into the
// lazy per-axis encoding build, which runs inside frame setup: the frame
// must fail with a *render.FrameError in phase "setup", and the next
// frame must succeed (the failed build retried).
func TestEncodingBuildPanicBecomesSetupFrameError(t *testing.T) {
	v := vol.MRIBrain(16)
	pv, err := PrepareVolume(v.Data, v.Nx, v.Ny, v.Nz, TransferMRI, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	re, err := pv.NewRenderer(Config{Algorithm: NewParallel, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// The classification is already built; the first frame triggers the
	// encoding build, which the error rule fails.
	pv.SetFaultInjector(faultinject.New(faultinject.Rule{
		Kind: faultinject.KindError, Site: "cachebuild", Worker: -1, Band: -1,
	}))
	_, _, err = re.RenderCtx(context.Background(), 30, 15)
	var fe *render.FrameError
	if !errors.As(err, &fe) || fe.Phase != "setup" {
		t.Fatalf("err = %v, want *render.FrameError in phase setup", err)
	}
	pv.SetFaultInjector(nil)
	if _, _, err := re.RenderCtx(context.Background(), 30, 15); err != nil {
		t.Fatalf("frame after encoding-build failure: %v", err)
	}
}
