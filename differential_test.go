package shearwarp

// Differential test: the shear-warp renderer against the image-order
// ray-casting baseline (internal/raycast). The two algorithms share the
// classified volume, the view factorization, and the final raster, but
// resample differently — shear-warp takes one bilinear sample per object
// slice and bilinearly warps the intermediate image, while the ray caster
// composites trilinear samples at unit spacing along each pixel's ray.
// The outputs are therefore structurally equivalent but not close
// per-pixel (shear-warp's two-pass filtering is visibly softer, exactly
// as Lacroute describes), and this test pins the agreement inside an
// empirically calibrated envelope so a geometry or compositing regression
// in either renderer — or in the shared factorization — shows up as
// drift.
//
// Calibration (64-voxel phantoms, 6 viewpoints spanning all three
// principal axes, both transfer functions; opacity correction does not
// materially change any metric):
//
//	metric                              worst observed   budget
//	silhouette mismatch fraction        0.044            0.08
//	RMSE over RGB channels              48.3             65
//	max per-channel difference          162              200
//	differing-pixel fraction            0.49             0.70
//
// The silhouette check is the strong invariant: a pixel is "covered" when
// its luma clears a small threshold, and the two renderers must agree on
// coverage everywhere except a thin band of filter-dependent edge pixels.
// A misaligned warp, a wrong shear sign, or a broken early-termination
// path moves whole regions and blows this bound immediately, while the
// color metrics bound the aggregate resampling disagreement.

import (
	"testing"

	"shearwarp/internal/img"
)

// diffBudget is the per-phantom agreement envelope between shear-warp and
// the ray-casting baseline. See the calibration table above.
type diffBudget struct {
	maxSilhouette float64 // coverage-mask mismatch fraction
	maxRMSE       float64 // RMSE over RGB channels
	maxAbs        int     // largest per-channel difference
	maxDiffFrac   float64 // fraction of pixels differing at all
}

// silhouetteMismatch returns the fraction of pixels covered (luma above a
// small threshold) by exactly one of the two images.
func silhouetteMismatch(a, b *img.Final) float64 {
	const thr = 3 * 8 // summed-RGB threshold: ignore faint warp fringe
	mism := 0
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			ar, ag, ab := a.AtRGB(x, y)
			br, bg, bb := b.AtRGB(x, y)
			if (int(ar)+int(ag)+int(ab) >= thr) != (int(br)+int(bg)+int(bb) >= thr) {
				mism++
			}
		}
	}
	return float64(mism) / float64(a.W*a.H)
}

// renderPair renders the same viewpoint with NewParallel and RayCast over
// the same phantom and returns the two final images.
func renderPair(t *testing.T, ctPhantom bool, size int, yaw, pitch float64) (sw, rc *img.Final) {
	t.Helper()
	mk := func(alg Algorithm) *Renderer {
		cfg := Config{Algorithm: alg, Procs: 4}
		if ctPhantom {
			return NewCTPhantom(size, cfg)
		}
		return NewMRIPhantom(size, cfg)
	}
	swr, rcr := mk(NewParallel), mk(RayCast)
	defer swr.Close()
	imSW, _ := swr.Render(yaw, pitch)
	imRC, _ := rcr.Render(yaw, pitch)
	return imSW.f, imRC.f
}

// TestDifferentialShearWarpVsRaycast drives both renderers across
// viewpoints in all three principal-axis regimes on both phantoms and
// checks every image pair against the phantom's budget.
func TestDifferentialShearWarpVsRaycast(t *testing.T) {
	// Viewpoints chosen so the factorization exercises each principal
	// axis and both shear signs.
	views := [][2]float64{
		{20, 10},   // z principal axis, small shear
		{50, 15},   // x principal axis
		{80, -10},  // x axis, steep yaw, negative pitch
		{-30, 25},  // negative yaw
		{10, 70},   // y principal axis (steep pitch)
		{135, -30}, // behind the volume
	}
	budget := diffBudget{maxSilhouette: 0.08, maxRMSE: 65, maxAbs: 200, maxDiffFrac: 0.70}
	const size = 64
	for _, name := range []string{"mri", "ct"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, v := range views {
				sw, rc := renderPair(t, name == "ct", size, v[0], v[1])
				if sw.W != rc.W || sw.H != rc.H {
					t.Fatalf("view %v: size mismatch: shear-warp %dx%d, raycast %dx%d",
						v, sw.W, sw.H, rc.W, rc.H)
				}
				if sw.NonBlackCount() == 0 {
					t.Fatalf("view %v: shear-warp image is all black", v)
				}
				sil := silhouetteMismatch(sw, rc)
				d := img.Compare(sw, rc)
				frac := float64(d.Differs) / float64(sw.W*sw.H)
				t.Logf("view %5.0f/%-4.0f  %3dx%-3d  sil %.4f  rmse %6.3f  max %3d  differs %5.3f",
					v[0], v[1], sw.W, sw.H, sil, d.RMSE, d.MaxAbs, frac)
				if sil > budget.maxSilhouette {
					t.Errorf("view %v: silhouette mismatch %.4f exceeds budget %.4f", v, sil, budget.maxSilhouette)
				}
				if d.RMSE > budget.maxRMSE {
					t.Errorf("view %v: RMSE %.3f exceeds budget %.3f", v, d.RMSE, budget.maxRMSE)
				}
				if d.MaxAbs > budget.maxAbs {
					t.Errorf("view %v: max channel diff %d exceeds budget %d", v, d.MaxAbs, budget.maxAbs)
				}
				if frac > budget.maxDiffFrac {
					t.Errorf("view %v: differing-pixel fraction %.3f exceeds budget %.3f", v, frac, budget.maxDiffFrac)
				}
			}
		})
	}
}

// TestDifferentialRaycastCyclesAdvantage promotes the examples/raycast-
// compare experiment into a regression check: across the same viewpoints
// the modeled serial cycles of the shear warper must stay well below the
// ray caster's (the paper reports 4-7x; the phantom at this size measures
// ~3x, and dropping under 2x would mean the coherence structures stopped
// working).
func TestDifferentialRaycastCyclesAdvantage(t *testing.T) {
	const size = 64
	views := [][2]float64{{20, 10}, {50, 15}, {80, -10}}
	sw := NewMRIPhantom(size, Config{Algorithm: Serial})
	rc := NewMRIPhantom(size, Config{Algorithm: RayCast})
	var swTotal, rcTotal int64
	for _, v := range views {
		_, swInfo := sw.Render(v[0], v[1])
		_, rcInfo := rc.Render(v[0], v[1])
		if swInfo.Cycles <= 0 || rcInfo.Cycles <= 0 {
			t.Fatalf("view %v: non-positive modeled cycles (sw %d, rc %d)", v, swInfo.Cycles, rcInfo.Cycles)
		}
		swTotal += swInfo.Cycles
		rcTotal += rcInfo.Cycles
	}
	ratio := float64(rcTotal) / float64(swTotal)
	t.Logf("modeled cycles: shear-warp %d, raycast %d, ratio %.2f", swTotal, rcTotal, ratio)
	if ratio < 2 {
		t.Errorf("shear-warp advantage collapsed: raycast/shear-warp cycle ratio %.2f < 2", ratio)
	}
}
