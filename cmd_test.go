package shearwarp

// End-to-end smoke tests for the command-line tools, exercised as real
// subprocesses through `go run`.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out.String())
	}
	return out.String()
}

func TestVolgenAndRenderCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	volPath := filepath.Join(dir, "head.vol")
	out := runCmd(t, "./cmd/volgen", "-kind", "mri", "-size", "24", "-out", volPath)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("volgen output: %q", out)
	}
	if st, err := os.Stat(volPath); err != nil || st.Size() < 16 {
		t.Fatalf("volume file missing or empty: %v", err)
	}

	// Resample it up.
	big := filepath.Join(dir, "big.vol")
	runCmd(t, "./cmd/volgen", "-in", volPath, "-resample", "32x32x20", "-out", big)

	// Render the generated volume with each algorithm.
	ppm := filepath.Join(dir, "frame.ppm")
	for _, alg := range []string{"serial", "old", "new", "raycast"} {
		out := runCmd(t, "./cmd/shearwarp", "-in", volPath, "-alg", alg,
			"-procs", "2", "-out", ppm)
		if !strings.Contains(out, "wrote") {
			t.Fatalf("shearwarp %s output: %q", alg, out)
		}
		data, err := os.ReadFile(ppm)
		if err != nil || !bytes.HasPrefix(data, []byte("P6\n")) {
			t.Fatalf("%s did not produce a PPM: %v", alg, err)
		}
	}

	// PNG output path.
	png := filepath.Join(dir, "frame.png")
	runCmd(t, "./cmd/shearwarp", "-in", volPath, "-alg", "new", "-out", png)
	data, err := os.ReadFile(png)
	if err != nil || !bytes.HasPrefix(data, []byte("\x89PNG")) {
		t.Fatalf("PNG output wrong: %v", err)
	}
}

func TestExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := runCmd(t, "./cmd/experiments", "-list")
	for _, id := range []string{"fig2", "fig22", "abl-barrier", "attr", "rates"} {
		if !strings.Contains(out, id) {
			t.Fatalf("-list missing %s:\n%s", id, out)
		}
	}
	out = runCmd(t, "./cmd/experiments", "-fig", "fig10", "-scale", "small")
	if !strings.Contains(out, "Per-scanline profile") {
		t.Fatalf("fig10 output wrong:\n%s", out)
	}
}
