package shearwarp

// End-to-end smoke tests for the command-line tools, exercised as real
// subprocesses through `go run`.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out.String())
	}
	return out.String()
}

func TestVolgenAndRenderCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	volPath := filepath.Join(dir, "head.vol")
	out := runCmd(t, "./cmd/volgen", "-kind", "mri", "-size", "24", "-out", volPath)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("volgen output: %q", out)
	}
	if st, err := os.Stat(volPath); err != nil || st.Size() < 16 {
		t.Fatalf("volume file missing or empty: %v", err)
	}

	// Resample it up.
	big := filepath.Join(dir, "big.vol")
	runCmd(t, "./cmd/volgen", "-in", volPath, "-resample", "32x32x20", "-out", big)

	// Render the generated volume with each algorithm.
	ppm := filepath.Join(dir, "frame.ppm")
	for _, alg := range []string{"serial", "old", "new", "raycast"} {
		out := runCmd(t, "./cmd/shearwarp", "-in", volPath, "-alg", alg,
			"-procs", "2", "-out", ppm)
		if !strings.Contains(out, "wrote") {
			t.Fatalf("shearwarp %s output: %q", alg, out)
		}
		data, err := os.ReadFile(ppm)
		if err != nil || !bytes.HasPrefix(data, []byte("P6\n")) {
			t.Fatalf("%s did not produce a PPM: %v", alg, err)
		}
	}

	// PNG output path.
	png := filepath.Join(dir, "frame.png")
	runCmd(t, "./cmd/shearwarp", "-in", volPath, "-alg", "new", "-out", png)
	data, err := os.ReadFile(png)
	if err != nil || !bytes.HasPrefix(data, []byte("\x89PNG")) {
		t.Fatalf("PNG output wrong: %v", err)
	}
}

func TestShearwarpStatsAndTraceCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "phases.json")
	tracePath := filepath.Join(dir, "trace.out")

	// -stats prints a per-worker breakdown table for both parallel
	// algorithms; -statsjson and -trace write their files alongside.
	for _, alg := range []string{"old", "new"} {
		out := runCmd(t, "./cmd/shearwarp", "-kind", "mri", "-size", "24",
			"-alg", alg, "-procs", "2", "-frames", "2",
			"-stats", "-statsjson", jsonPath, "-trace", tracePath)
		for _, want := range []string{"phases-" + alg, "imbal(ms)", "scanlines", "load imbalance"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s -stats output missing %q:\n%s", alg, want, out)
			}
		}

		var doc struct {
			Algorithm string `json:"algorithm"`
			Frames    []struct {
				Workers   int `json:"workers"`
				WallNS    int64
				PerWorker []map[string]any `json:"per_worker"`
			} `json:"frames"`
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s -statsjson invalid JSON: %v\n%s", alg, err, data)
		}
		if doc.Algorithm != alg || len(doc.Frames) != 2 || doc.Frames[0].Workers != 2 ||
			len(doc.Frames[0].PerWorker) != 2 {
			t.Fatalf("%s -statsjson shape wrong: %+v", alg, doc)
		}

		if st, err := os.Stat(tracePath); err != nil || st.Size() == 0 {
			t.Fatalf("%s -trace wrote no data: %v", alg, err)
		}
	}
}

func TestExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := runCmd(t, "./cmd/experiments", "-list")
	for _, id := range []string{"fig2", "fig22", "abl-barrier", "attr", "rates"} {
		if !strings.Contains(out, id) {
			t.Fatalf("-list missing %s:\n%s", id, out)
		}
	}
	out = runCmd(t, "./cmd/experiments", "-fig", "fig10", "-scale", "small")
	if !strings.Contains(out, "Per-scanline profile") {
		t.Fatalf("fig10 output wrong:\n%s", out)
	}
}
