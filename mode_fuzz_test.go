package shearwarp

// FuzzMIPOrderInvariance: MIP compositing is a per-channel float max, so
// — unlike the over-blend, whose bit-identity rests on every intermediate
// scanline being owned front to back by exactly one worker — its result
// must be invariant under ANY execution order: across algorithms, across
// worker counts, and across arbitrary scheduling perturbations. The fuzz
// input picks a viewpoint and a packed delay schedule; the schedule is
// expanded into deterministic faultinject delay rules on the steal and
// scanline sites, which is the hammer that forces OldParallel into
// steal-heavy interleavings and NewParallel into skewed band completion.
// Serial output is the reference; both parallel algorithms must match it
// byte for byte under every schedule.

import (
	"bytes"
	"testing"
	"time"

	"shearwarp/internal/faultinject"
)

// mipDelayRules expands a packed 32-bit schedule into up to four
// deterministic delay rules. Each byte of sched seeds one rule: site
// (steal/scanline), worker (0-3 or any), the Nth matching visit, and a
// sub-millisecond delay — enough to reorder worker interleavings without
// making the fuzz loop slow.
func mipDelayRules(sched uint32) []faultinject.Rule {
	var rules []faultinject.Rule
	for i := 0; i < 4; i++ {
		b := uint8(sched >> (8 * i))
		if b == 0 {
			continue // zero byte = no rule, so small seeds stay cheap
		}
		site := "scanline"
		if b&1 != 0 {
			site = "steal"
		}
		worker := int(b>>1) % 5
		if worker == 4 {
			worker = -1 // any worker
		}
		rules = append(rules, faultinject.Rule{
			Kind:   faultinject.KindDelay,
			Site:   site,
			Worker: worker,
			Band:   -1,
			Hit:    int64(b>>3)%7 + 1,
			Delay:  time.Duration(50+10*int(b>>2)) * time.Microsecond,
		})
	}
	return rules
}

func FuzzMIPOrderInvariance(f *testing.F) {
	// Seed corpus: no perturbation, single delays on each site, a
	// steal-heavy all-workers schedule, and dense mixed schedules across
	// principal axes and pitch signs.
	f.Add(int16(30), int8(15), uint32(0))
	f.Add(int16(30), int8(15), uint32(0x01))          // one steal delay, worker 0
	f.Add(int16(50), int8(-20), uint32(0x02))         // one scanline delay
	f.Add(int16(100), int8(-35), uint32(0x09_09))     // steal delays, two workers
	f.Add(int16(10), int8(70), uint32(0xFF_FF_FF_FF)) // max perturbation, steep pitch
	f.Add(int16(200), int8(65), uint32(0xA5_5A_C3_3C))
	f.Add(int16(-45), int8(5), uint32(0x10_01_10_01))

	const size = 24 // small phantom keeps a fuzz iteration ~milliseconds
	f.Fuzz(func(t *testing.T, yawDeg int16, pitchDeg int8, sched uint32) {
		yaw, pitch := float64(yawDeg), float64(pitchDeg)
		ref := NewMRIPhantom(size, Config{Algorithm: Serial, Mode: ModeMIP})
		want, _ := ref.Render(yaw, pitch)

		// Fresh injectors per algorithm: rules fire once, and sharing one
		// injector would make the second render run unperturbed.
		old := NewMRIPhantom(size, Config{
			Algorithm: OldParallel, Mode: ModeMIP, Procs: 4,
			Faults: faultinject.New(mipDelayRules(sched)...),
		})
		defer old.Close()
		imo, _ := old.Render(yaw, pitch)
		if !bytes.Equal(want.f.Pix, imo.f.Pix) {
			t.Fatalf("yaw %v pitch %v sched %#x: OldParallel MIP differs from Serial", yaw, pitch, sched)
		}

		nw := NewMRIPhantom(size, Config{
			Algorithm: NewParallel, Mode: ModeMIP, Procs: 4,
			Faults: faultinject.New(mipDelayRules(sched)...),
		})
		defer nw.Close()
		imn, _ := nw.Render(yaw, pitch)
		if !bytes.Equal(want.f.Pix, imn.f.Pix) {
			t.Fatalf("yaw %v pitch %v sched %#x: NewParallel MIP differs from Serial", yaw, pitch, sched)
		}
	})
}
